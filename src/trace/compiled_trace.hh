/**
 * @file
 * Compiled (RLE/SoA) trace form and the batched replay workload.
 *
 * A recorded Trace is one 40-byte TraceEvent per operation, replayed
 * through per-event virtual dispatch. For the evaluation matrix that
 * is wasteful twice over: the overwhelming majority of events are
 * plain accesses, and the same trace is replayed by many cells. The
 * compiled form run-length-encodes the stream into access *runs* —
 * contiguous VA arrays with write/instr bitmaps — interleaved with the
 * rare control events, so a replay can hand whole runs to
 * Machine::runAccessBatch and the on-disk format v2 can store ~8.25
 * bytes per access instead of 26.
 */

#ifndef AGILEPAGING_TRACE_COMPILED_TRACE_HH
#define AGILEPAGING_TRACE_COMPILED_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/access_hint.hh"
#include "trace/trace.hh"

namespace ap
{

class Machine;

/**
 * Upper bound on events per access run. Splitting long runs (the
 * populate warmup alone is millions of consecutive accesses) bounds
 * the scratch buffering of the streaming file reader/writer at ~576
 * KiB while keeping per-run overhead negligible.
 */
constexpr std::uint64_t kMaxRunEvents = 64 * 1024;

/**
 * One compiled op: either a run of @p n consecutive accesses (data
 * and instruction fetches folded together, classified by the bitmaps)
 * or a single control event, where @p n indexes CompiledTrace::ctrl.
 */
struct CompiledOp
{
    TraceEvent::Kind kind = TraceEvent::Kind::Access;
    std::uint64_t n = 0;
};

/** Bit @p i of a packed bitmap. */
inline bool
testBit(const std::vector<std::uint64_t> &bits, std::uint64_t i)
{
    return (bits[i >> 6] >> (i & 63)) & 1;
}

/** Set bit @p i of a packed bitmap (must already be sized). */
inline void
setBit(std::vector<std::uint64_t> &bits, std::uint64_t i)
{
    bits[i >> 6] |= std::uint64_t(1) << (i & 63);
}

/**
 * A trace compiled into SoA access arrays plus control events.
 * Access runs never straddle the warmup boundary, so the boundary is
 * always between ops. Immutable once built; cells share one instance
 * through shared_ptr<const CompiledTrace>.
 */
struct CompiledTrace
{
    std::string workload;
    std::uint64_t seed = 0;
    /** Total events (accesses + control) in the original stream. */
    std::uint64_t eventCount = 0;
    /** Events before the measurement boundary. */
    std::uint64_t warmupEvents = 0;
    /** Ops before the measurement boundary (boundary-aligned). */
    std::uint64_t warmupOps = 0;

    /** Access VAs, in stream order across all runs. */
    std::vector<Addr> vas;
    /** Bit i set: vas[i] is a write (always clear for fetches). */
    std::vector<std::uint64_t> writeBits;
    /** Bit i set: vas[i] is an instruction fetch. */
    std::vector<std::uint64_t> instrBits;

    std::vector<CompiledOp> ops;
    /** Non-access events, indexed by CompiledOp::n. */
    std::vector<TraceEvent> ctrl;

    /**
     * Per-op run hints (what one pass over each run proved), parallel
     * to @ref ops; control ops get default-constructed entries. Not
     * part of the on-disk format — finalizeRunHints() recomputes them
     * after compileTrace() and after every file read, so hints never
     * affect format compatibility or trace digests.
     */
    std::vector<AccessRunHint> runHints;
};

/** (Re)build CompiledTrace::runHints from the access arrays. */
void finalizeRunHints(CompiledTrace &trace);

/** Compile an event-list trace into the RLE/SoA form. */
CompiledTrace compileTrace(const Trace &trace);

/** Expand back into the event-list form (exact inverse). */
Trace decompileTrace(const CompiledTrace &compiled);

/**
 * Replays a compiled trace. When the host is a Machine (and
 * @p batched), access runs drain through Machine::runAccessBatch —
 * the fast path. Any other WorkloadHost gets a per-event fallback
 * with identical semantics.
 */
class BatchReplayWorkload : public Workload
{
  public:
    explicit BatchReplayWorkload(
        std::shared_ptr<const CompiledTrace> trace, bool batched = true);

    std::string name() const override;
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;
    /** The recorded warmup boundary is authoritative. */
    bool selfWarmup() const override { return true; }

    /**
     * Position the replay at the measurement boundary of @p machine
     * without replaying anything — the counterpart of restoring a
     * warm-state snapshot into the machine. After this, driving
     * Machine::runMeasured(*this) plays exactly the measured ops.
     */
    void resumeAtBoundary(Machine &machine);

  private:
    void applyOp(WorkloadHost &host);

    std::shared_ptr<const CompiledTrace> trace_;
    bool batched_;
    /** Non-null after init() when the host supports batching. */
    Machine *machine_ = nullptr;
    std::uint64_t next_op_ = 0;
    /** Index into the access arrays of the next unplayed access. */
    std::uint64_t access_cursor_ = 0;
};

/** Serialize in on-disk format v2 ("APTRACE2"). @return success. */
bool writeCompiledTrace(const CompiledTrace &trace, std::ostream &os);
bool writeCompiledTraceFile(const CompiledTrace &trace,
                            const std::string &path);

/** Deserialize format v2. @return false on format mismatch. */
bool readCompiledTrace(std::istream &is, CompiledTrace &out);
bool readCompiledTraceFile(const std::string &path, CompiledTrace &out);

namespace detail
{
/** Parse a v2 stream positioned just after the 8-byte magic. */
bool readCompiledTraceBody(std::istream &is, CompiledTrace &out);
} // namespace detail

} // namespace ap

#endif // AGILEPAGING_TRACE_COMPILED_TRACE_HH
