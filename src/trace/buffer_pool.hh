/**
 * @file
 * Thread-local recycling pool for the trace engine's scratch buffers.
 *
 * Recording runs grow a multi-MB event vector and the compiled-trace
 * reader/writer repacks per-run bitmaps through temporary word
 * buffers; both are allocated, filled, and dropped once per cell. The
 * pool keeps the backing stores of returned buffers alive (per
 * thread, so the parallel runner never contends) and hands them back
 * with their capacity intact, turning the per-cell allocation churn
 * into a handful of pointer swaps after the first cell warms the
 * pool.
 */

#ifndef AGILEPAGING_TRACE_BUFFER_POOL_HH
#define AGILEPAGING_TRACE_BUFFER_POOL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "trace/trace.hh"

namespace ap
{

/** Per-thread buffer recycler for trace record/compile scratch. */
class TraceBufferPool
{
  public:
    /** The calling thread's pool. */
    static TraceBufferPool &
    instance()
    {
        thread_local TraceBufferPool pool;
        return pool;
    }

    /** Borrow a cleared word buffer (bitmap repack scratch). */
    std::vector<std::uint64_t>
    takeWords()
    {
        if (words_.empty()) {
            ++word_allocs_;
            return {};
        }
        ++word_reuses_;
        std::vector<std::uint64_t> v = std::move(words_.back());
        words_.pop_back();
        v.clear();
        return v;
    }

    /** Return a word buffer; its capacity is kept for the next take. */
    void
    giveWords(std::vector<std::uint64_t> v)
    {
        if (words_.size() < kMaxPooled && v.capacity() > 0)
            words_.push_back(std::move(v));
    }

    /** Borrow a cleared event buffer (recording-run backing store). */
    std::vector<TraceEvent>
    takeEvents()
    {
        if (events_.empty()) {
            ++event_allocs_;
            return {};
        }
        ++event_reuses_;
        std::vector<TraceEvent> v = std::move(events_.back());
        events_.pop_back();
        v.clear();
        return v;
    }

    /** Return an event buffer, keeping its (multi-MB) capacity. */
    void
    giveEvents(std::vector<TraceEvent> v)
    {
        if (events_.size() < kMaxPooled && v.capacity() > 0)
            events_.push_back(std::move(v));
    }

    /** Takes served by recycling a returned buffer. */
    std::uint64_t wordReuses() const { return word_reuses_; }
    std::uint64_t eventReuses() const { return event_reuses_; }
    /** Takes that had to start from an empty buffer. */
    std::uint64_t wordAllocs() const { return word_allocs_; }
    std::uint64_t eventAllocs() const { return event_allocs_; }

  private:
    /** Buffers retained per kind; beyond this, returns just free. */
    static constexpr std::size_t kMaxPooled = 4;

    std::vector<std::vector<std::uint64_t>> words_;
    std::vector<std::vector<TraceEvent>> events_;
    std::uint64_t word_reuses_ = 0;
    std::uint64_t event_reuses_ = 0;
    std::uint64_t word_allocs_ = 0;
    std::uint64_t event_allocs_ = 0;
};

/**
 * Hand a finished trace's event storage back to the pool (call once
 * the trace has been compiled or otherwise consumed).
 */
inline void
recycleTrace(Trace &&t)
{
    TraceBufferPool::instance().giveEvents(std::move(t.events));
}

/** RAII loan of a pooled word buffer. */
class PooledWords
{
  public:
    PooledWords() : buf_(TraceBufferPool::instance().takeWords()) {}
    ~PooledWords() { TraceBufferPool::instance().giveWords(std::move(buf_)); }
    PooledWords(const PooledWords &) = delete;
    PooledWords &operator=(const PooledWords &) = delete;

    std::vector<std::uint64_t> &operator*() { return buf_; }
    std::vector<std::uint64_t> *operator->() { return &buf_; }

  private:
    std::vector<std::uint64_t> buf_;
};

} // namespace ap

#endif // AGILEPAGING_TRACE_BUFFER_POOL_HH
