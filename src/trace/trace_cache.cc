/**
 * @file
 * Trace cache implementation.
 */

#include "trace/trace_cache.hh"

#include <optional>

#include "base/logging.hh"
#include "trace/record.hh"

namespace ap
{

TraceCache::TracePtr
TraceCache::obtain(const TraceCacheKey &key, const RecordFn &record)
{
    std::promise<TracePtr> promise;
    std::shared_future<TracePtr> fut;
    bool winner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            winner = true;
            fut = promise.get_future().share();
            map_.emplace(key, fut);
            ++records_;
        } else {
            fut = it->second;
            ++replays_;
        }
    }
    if (winner) {
        // Record outside the lock: recordings of distinct keys run
        // concurrently, and only same-key requesters wait.
        try {
            promise.set_value(record());
        } catch (...) {
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    return fut.get();
}

std::uint64_t
TraceCache::records() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
}

std::uint64_t
TraceCache::replays() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return replays_;
}

RunResult
runCellCached(TraceCache &cache, const std::string &workload_name,
              const WorkloadParams &params, const SimConfig &cfg,
              bool batched)
{
    TraceCacheKey key;
    key.workload = workload_name;
    key.pageSize = cfg.pageSize;
    key.operations = params.operations;
    key.seed = params.seed;
    key.footprintBytes = params.footprintBytes;
    key.warmupFraction = cfg.warmupFraction;

    // Set only if this call won the recording race: the recording run
    // is a complete measured run of this very cell, so its result is
    // the answer and a replay would be redundant.
    std::optional<RunResult> recorded;
    TraceCache::TracePtr compiled = cache.obtain(key, [&] {
        auto workload = makeWorkload(workload_name, params);
        ap_assert(workload != nullptr, "unknown workload ",
                  workload_name);
        Machine machine(cfg);
        RecordedRun rec = recordRun(machine, *workload);
        recorded = rec.result;
        return std::make_shared<const CompiledTrace>(
            compileTrace(rec.trace));
    });
    if (recorded)
        return *recorded;

    Machine machine(cfg);
    BatchReplayWorkload replay(compiled, batched);
    RunResult r = machine.run(replay);
    // The replay runs under the cell's own config; only the reporting
    // name ("replay:<wl>") needs restoring for matrix consumers.
    r.workload = compiled->workload;
    return r;
}

RunResult
runExperimentCached(TraceCache &cache, const ExperimentSpec &spec,
                    bool batched)
{
    WorkloadParams params = defaultParamsFor(spec.workload);
    if (spec.operations)
        params.operations = spec.operations;
    SimConfig cfg =
        configFor(spec.mode, spec.pageSize, params, spec.hwOpts);
    return runCellCached(cache, spec.workload, params, cfg, batched);
}

CellFn
cachedCellFn(TraceCache &cache, bool batched)
{
    return [&cache, batched](const ExperimentSpec &spec) {
        return runExperimentCached(cache, spec, batched);
    };
}

} // namespace ap
