/**
 * @file
 * Trace cache implementation.
 */

#include "trace/trace_cache.hh"

#include <optional>

#include "base/logging.hh"
#include "trace/buffer_pool.hh"
#include "trace/record.hh"

namespace ap
{

TraceCache::TracePtr
TraceCache::obtain(const TraceCacheKey &key, const RecordFn &record)
{
    std::promise<TracePtr> promise;
    std::shared_future<TracePtr> fut;
    bool winner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            winner = true;
            fut = promise.get_future().share();
            map_.emplace(key, fut);
            ++records_;
        } else {
            fut = it->second;
            ++replays_;
        }
    }
    if (winner) {
        // Record outside the lock: recordings of distinct keys run
        // concurrently, and only same-key requesters wait.
        try {
            promise.set_value(record());
        } catch (...) {
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    return fut.get();
}

std::uint64_t
TraceCache::records() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
}

std::uint64_t
TraceCache::replays() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return replays_;
}

RunResult
runCellCached(TraceCache &cache, const std::string &workload_name,
              const WorkloadParams &params, const SimConfig &cfg,
              bool batched)
{
    TraceCacheKey key;
    key.workload = workload_name;
    key.pageSize = cfg.pageSize;
    key.operations = params.operations;
    key.seed = params.seed;
    key.footprintBytes = params.footprintBytes;
    key.warmupFraction = cfg.warmupFraction;

    // Set only if this call won the recording race: the recording run
    // is a complete measured run of this very cell, so its result is
    // the answer and a replay would be redundant.
    std::optional<RunResult> recorded;
    TraceCache::TracePtr compiled = cache.obtain(key, [&] {
        auto workload = makeWorkload(workload_name, params);
        ap_assert(workload != nullptr, "unknown workload ",
                  workload_name);
        Machine machine(cfg);
        RecordedRun rec = recordRun(machine, *workload);
        recorded = rec.result;
        auto t = std::make_shared<const CompiledTrace>(
            compileTrace(rec.trace));
        recycleTrace(std::move(rec.trace));
        return t;
    });
    if (recorded)
        return *recorded;

    Machine machine(cfg);
    BatchReplayWorkload replay(compiled, batched);
    RunResult r = machine.run(replay);
    // The replay runs under the cell's own config; only the reporting
    // name ("replay:<wl>") needs restoring for matrix consumers.
    r.workload = compiled->workload;
    return r;
}

RunResult
runExperimentCached(TraceCache &cache, const ExperimentSpec &spec,
                    bool batched)
{
    WorkloadParams params = defaultParamsFor(spec.workload);
    if (spec.operations)
        params.operations = spec.operations;
    SimConfig cfg =
        configFor(spec.mode, spec.pageSize, params, spec.hwOpts);
    cfg.numVcpus = spec.numVcpus;
    cfg.tlbCoherence = spec.tlbCoherence;
    return runCellCached(cache, spec.workload, params, cfg, batched);
}

CellFn
cachedCellFn(TraceCache &cache, bool batched)
{
    return [&cache, batched](const ExperimentSpec &spec) {
        return runExperimentCached(cache, spec, batched);
    };
}

namespace
{

/**
 * The fork half of the snapshotted runners: restore @p snap into a
 * machine — leased from @p pool when one is given, freshly
 * constructed otherwise — position the replay at the boundary, and
 * run the measured region.
 */
RunResult
runForked(const SimConfig &cfg, const SnapshotPtr &snap,
          const TraceCache::TracePtr &compiled, bool batched,
          MachinePool *pool, const std::string &name)
{
    if (pool) {
        MachinePool::Lease lease = pool->acquire(cfg);
        bool ok = restoreSnapshot(*snap, *lease);
        ap_assert(ok, "snapshot restore failed for ", name);
        BatchReplayWorkload replay(compiled, batched);
        replay.resumeAtBoundary(*lease);
        return lease->runMeasured(replay);
    }
    Machine machine(cfg);
    bool ok = restoreSnapshot(*snap, machine);
    ap_assert(ok, "snapshot restore failed for ", name);
    BatchReplayWorkload replay(compiled, batched);
    replay.resumeAtBoundary(machine);
    return machine.runMeasured(replay);
}

} // namespace

RunResult
runCellSnapshotted(TraceCache &traces, SnapshotCache &snaps,
                   const std::string &workload_name,
                   const WorkloadParams &params, const SimConfig &cfg,
                   bool batched, MachinePool *pool)
{
    TraceCacheKey tkey;
    tkey.workload = workload_name;
    tkey.pageSize = cfg.pageSize;
    tkey.operations = params.operations;
    tkey.seed = params.seed;
    tkey.footprintBytes = params.footprintBytes;
    tkey.warmupFraction = cfg.warmupFraction;

    std::optional<RunResult> recorded;
    TraceCache::TracePtr compiled = traces.obtain(tkey, [&] {
        auto workload = makeWorkload(workload_name, params);
        ap_assert(workload != nullptr, "unknown workload ",
                  workload_name);
        Machine machine(cfg);
        RecordedRun rec = recordRun(machine, *workload);
        recorded = rec.result;
        auto t = std::make_shared<const CompiledTrace>(
            compileTrace(rec.trace));
        recycleTrace(std::move(rec.trace));
        return t;
    });
    // The recording run was a complete measured run of this cell; its
    // result stands and it already paid for warmup, so the snapshot
    // cache is left for the next cell of this config to seed.
    if (recorded)
        return *recorded;

    SnapshotKey skey;
    skey.workload = workload_name;
    skey.operations = params.operations;
    skey.seed = params.seed;
    skey.footprintBytes = params.footprintBytes;
    skey.configDigest = simConfigDigest(cfg);

    // Kept outside the capture lambda: the capture winner finishes
    // its run on the machine it just warmed (the snapshot future is
    // fulfilled as soon as capture completes, so same-key waiters are
    // not held through this cell's measured region).
    std::unique_ptr<Machine> warm;
    std::unique_ptr<BatchReplayWorkload> warm_replay;
    SnapshotPtr snap = snaps.obtain(skey, [&] {
        warm = std::make_unique<Machine>(cfg);
        warm_replay =
            std::make_unique<BatchReplayWorkload>(compiled, batched);
        warm->runWarmup(*warm_replay);
        return captureSnapshot(*warm);
    });

    RunResult r;
    if (warm) {
        r = warm->runMeasured(*warm_replay);
    } else {
        r = runForked(cfg, snap, compiled, batched, pool,
                      workload_name);
    }
    r.workload = compiled->workload;
    return r;
}

namespace
{

/** Shared trace-cache front half of the runWorkload* entry points. */
TraceCache::TracePtr
obtainWorkloadTrace(TraceCache &traces, const std::string &cache_name,
                    Workload &workload, const SimConfig &cfg,
                    std::optional<RunResult> &recorded)
{
    const WorkloadParams &params = workload.params();
    TraceCacheKey tkey;
    tkey.workload = cache_name;
    tkey.pageSize = cfg.pageSize;
    tkey.operations = params.operations;
    tkey.seed = params.seed;
    tkey.footprintBytes = params.footprintBytes;
    tkey.warmupFraction = cfg.warmupFraction;
    return traces.obtain(tkey, [&] {
        Machine machine(cfg);
        RecordedRun rec = recordRun(machine, workload);
        recorded = rec.result;
        rec.trace.workload = cache_name;
        auto t = std::make_shared<const CompiledTrace>(
            compileTrace(rec.trace));
        recycleTrace(std::move(rec.trace));
        return t;
    });
}

} // namespace

RunResult
runWorkloadCached(TraceCache &traces, const std::string &cache_name,
                  Workload &workload, const SimConfig &cfg, bool batched)
{
    std::optional<RunResult> recorded;
    TraceCache::TracePtr compiled =
        obtainWorkloadTrace(traces, cache_name, workload, cfg, recorded);
    if (recorded)
        return *recorded;

    Machine machine(cfg);
    BatchReplayWorkload replay(compiled, batched);
    RunResult r = machine.run(replay);
    r.workload = compiled->workload;
    return r;
}

RunResult
runWorkloadSnapshotted(TraceCache &traces, SnapshotCache &snaps,
                       const std::string &cache_name, Workload &workload,
                       const SimConfig &cfg, bool batched,
                       MachinePool *pool)
{
    const WorkloadParams &params = workload.params();
    std::optional<RunResult> recorded;
    TraceCache::TracePtr compiled =
        obtainWorkloadTrace(traces, cache_name, workload, cfg, recorded);
    if (recorded)
        return *recorded;

    SnapshotKey skey;
    skey.workload = cache_name;
    skey.operations = params.operations;
    skey.seed = params.seed;
    skey.footprintBytes = params.footprintBytes;
    skey.configDigest = simConfigDigest(cfg);

    std::unique_ptr<Machine> warm;
    std::unique_ptr<BatchReplayWorkload> warm_replay;
    SnapshotPtr snap = snaps.obtain(skey, [&] {
        warm = std::make_unique<Machine>(cfg);
        warm_replay =
            std::make_unique<BatchReplayWorkload>(compiled, batched);
        warm->runWarmup(*warm_replay);
        return captureSnapshot(*warm);
    });

    RunResult r;
    if (warm) {
        r = warm->runMeasured(*warm_replay);
    } else {
        r = runForked(cfg, snap, compiled, batched, pool, cache_name);
    }
    r.workload = compiled->workload;
    return r;
}

RunResult
runExperimentSnapshotted(TraceCache &traces, SnapshotCache &snaps,
                         const ExperimentSpec &spec, bool batched,
                         MachinePool *pool)
{
    WorkloadParams params = defaultParamsFor(spec.workload);
    if (spec.operations)
        params.operations = spec.operations;
    SimConfig cfg =
        configFor(spec.mode, spec.pageSize, params, spec.hwOpts);
    cfg.numVcpus = spec.numVcpus;
    cfg.tlbCoherence = spec.tlbCoherence;
    return runCellSnapshotted(traces, snaps, spec.workload, params, cfg,
                              batched, pool);
}

CellFn
snapshotCellFn(TraceCache &traces, SnapshotCache &snaps, bool batched,
               MachinePool *pool)
{
    return [&traces, &snaps, batched, pool](const ExperimentSpec &spec) {
        return runExperimentSnapshotted(traces, snaps, spec, batched,
                                        pool);
    };
}

} // namespace ap
