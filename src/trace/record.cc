/**
 * @file
 * Recording-run implementation.
 */

#include "trace/record.hh"

#include "trace/buffer_pool.hh"

namespace ap
{

RecordedRun
recordRun(Machine &machine, Workload &workload)
{
    RecordedRun out;
    out.trace.workload = workload.name();
    out.trace.seed = workload.params().seed;

    TraceRecorder recorder(machine);
    // The event vector's backing store is recycled across recording
    // runs (recycleTrace returns it); one event per op plus warmup
    // touches, over-reserved by half so a first-use buffer never pays
    // a doubling realloc either.
    recorder.trace().events = TraceBufferPool::instance().takeEvents();
    recorder.trace().events.reserve(workload.params().operations +
                                    workload.params().operations / 2 +
                                    4096);
    ProcId pid = machine.spawnProcess();
    workload.init(recorder);
    workload.warmup(recorder);
    std::uint64_t warm_steps =
        workload.selfWarmup()
            ? 0
            : static_cast<std::uint64_t>(
                  workload.params().operations *
                  machine.config().warmupFraction);
    std::uint64_t steps = 0;
    bool more = true;
    while (more && steps < warm_steps) {
        more = workload.step(recorder);
        ++steps;
    }
    recorder.markWarmupBoundary();
    RunResult base = machine.snapshot(workload.name());
    // Match Machine::run's measurement boundary so a recording run
    // yields the same RunResult (and walk trace) as a plain run.
    if (machine.walkTrace())
        machine.walkTrace()->clear();
    while (more)
        more = workload.step(recorder);
    out.result =
        Machine::delta(machine.snapshot(workload.name()), base);
    machine.guestOs().reapProcess(pid);
    out.trace = std::move(recorder.trace());
    out.trace.workload = workload.name();
    out.trace.seed = workload.params().seed;
    return out;
}

} // namespace ap
