/**
 * @file
 * Recording-run implementation.
 */

#include "trace/record.hh"

namespace ap
{

RecordedRun
recordRun(Machine &machine, Workload &workload)
{
    RecordedRun out;
    out.trace.workload = workload.name();
    out.trace.seed = workload.params().seed;

    TraceRecorder recorder(machine);
    ProcId pid = machine.spawnProcess();
    workload.init(recorder);
    workload.warmup(recorder);
    std::uint64_t warm_steps = static_cast<std::uint64_t>(
        workload.params().operations *
        machine.config().warmupFraction);
    std::uint64_t steps = 0;
    bool more = true;
    while (more && steps < warm_steps) {
        more = workload.step(recorder);
        ++steps;
    }
    recorder.markWarmupBoundary();
    RunResult base = machine.snapshot(workload.name());
    while (more)
        more = workload.step(recorder);
    out.result =
        Machine::delta(machine.snapshot(workload.name()), base);
    machine.guestOs().exitProcess(pid);
    out.trace = std::move(recorder.trace());
    out.trace.workload = workload.name();
    out.trace.seed = workload.params().seed;
    return out;
}

} // namespace ap
