/**
 * @file
 * Bounded-memory trace file streaming.
 *
 * readTraceFile materializes the whole event vector, which for a
 * multi-million-op capture is hundreds of MB. TraceFileReader decodes
 * a trace file (either format version) in chunks, holding at most one
 * access run (kMaxRunEvents) of scratch; StreamReplayWorkload replays
 * straight off such a reader so arbitrarily large trace files run in
 * constant memory. trace_tool uses the reader to summarize files it
 * could never load whole.
 */

#ifndef AGILEPAGING_TRACE_TRACE_STREAM_HH
#define AGILEPAGING_TRACE_TRACE_STREAM_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/compiled_trace.hh"
#include "trace/trace.hh"

namespace ap
{

/**
 * Incremental decoder for a trace file. Opens, reads the header, and
 * then serves events in file order via next(). Forward-only; reopen
 * to rewind.
 */
class TraceFileReader
{
  public:
    explicit TraceFileReader(const std::string &path);

    /** Header parsed and no decode error so far. */
    bool ok() const { return version_ != 0 && !bad_; }
    /** On-disk format version (1 or 2), 0 if the open failed. */
    int version() const { return version_; }

    const std::string &workload() const { return workload_; }
    std::uint64_t seed() const { return seed_; }
    std::uint64_t warmupEvents() const { return warmup_; }
    /** Total events in the file (from the header). */
    std::uint64_t eventCount() const { return event_count_; }
    /** Events handed out so far. */
    std::uint64_t eventsRead() const { return events_read_; }

    /**
     * Decode up to @p max further events, appending to @p out (which
     * is cleared first). @return the number appended; 0 at end of
     * file or on a malformed stream (check ok()).
     */
    std::size_t next(std::vector<TraceEvent> &out, std::size_t max);

  private:
    bool readHeader();
    bool refillRun();

    std::ifstream is_;
    int version_ = 0;
    bool bad_ = false;
    std::string workload_;
    std::uint64_t seed_ = 0;
    std::uint64_t warmup_ = 0;
    std::uint64_t event_count_ = 0;
    std::uint64_t op_count_ = 0;    // v2
    std::uint64_t ops_read_ = 0;    // v2
    std::uint64_t events_read_ = 0;

    // v2: the access run currently being drained.
    std::vector<Addr> run_vas_;
    std::vector<std::uint64_t> run_w_, run_i_;
    std::uint64_t run_pos_ = 0;
};

/**
 * Replays a trace file through a TraceFileReader with a small event
 * buffer — bounded memory regardless of file size. The per-event
 * path only (no batching): the point is capacity, not speed.
 */
class StreamReplayWorkload : public Workload
{
  public:
    explicit StreamReplayWorkload(const std::string &path);

    /** The file opened and parsed (checked again at init()). */
    bool ok() const { return reader_ && reader_->ok(); }

    std::string name() const override;
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;
    /** The recorded warmup boundary is authoritative. */
    bool selfWarmup() const override { return true; }

  private:
    /** Apply the next event. @return false at end of stream. */
    bool applyNext(WorkloadHost &host);

    std::string path_;
    std::unique_ptr<TraceFileReader> reader_;
    std::vector<TraceEvent> buf_;
    std::size_t buf_pos_ = 0;
    std::uint64_t applied_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_TRACE_TRACE_STREAM_HH
