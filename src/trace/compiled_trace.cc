/**
 * @file
 * Compiled trace implementation: compile/decompile, batched replay,
 * and on-disk format v2.
 */

#include "trace/compiled_trace.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "base/logging.hh"
#include "trace/buffer_pool.hh"
#include "sim/machine.hh"

namespace ap
{

namespace
{
constexpr char kMagicV2[8] = {'A', 'P', 'T', 'R', 'A', 'C', 'E', '2'};

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
bool
get(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return bool(is);
}

std::uint64_t
bitmapWords(std::uint64_t n)
{
    return (n + 63) / 64;
}
} // namespace

CompiledTrace
compileTrace(const Trace &trace)
{
    CompiledTrace c;
    c.workload = trace.workload;
    c.seed = trace.seed;
    c.eventCount = trace.events.size();
    c.warmupEvents =
        std::min<std::uint64_t>(trace.warmupEvents, c.eventCount);

    std::uint64_t n_access = 0;
    for (const TraceEvent &e : trace.events) {
        if (e.kind == TraceEvent::Kind::Access ||
            e.kind == TraceEvent::Kind::InstrFetch) {
            ++n_access;
        }
    }
    c.vas.reserve(n_access);
    c.writeBits.assign(bitmapWords(n_access), 0);
    c.instrBits.assign(bitmapWords(n_access), 0);

    std::uint64_t run_len = 0;
    auto flushRun = [&] {
        if (run_len) {
            c.ops.push_back({TraceEvent::Kind::Access, run_len});
            run_len = 0;
        }
    };

    for (std::uint64_t i = 0; i < c.eventCount; ++i) {
        if (i == c.warmupEvents) {
            // Runs never straddle the measurement boundary.
            flushRun();
            c.warmupOps = c.ops.size();
        }
        const TraceEvent &e = trace.events[i];
        if (e.kind == TraceEvent::Kind::Access ||
            e.kind == TraceEvent::Kind::InstrFetch) {
            std::uint64_t idx = c.vas.size();
            c.vas.push_back(e.addr);
            if (e.kind == TraceEvent::Kind::Access && e.flag)
                setBit(c.writeBits, idx);
            if (e.kind == TraceEvent::Kind::InstrFetch)
                setBit(c.instrBits, idx);
            if (++run_len == kMaxRunEvents)
                flushRun();
        } else {
            flushRun();
            c.ops.push_back({e.kind, c.ctrl.size()});
            c.ctrl.push_back(e);
        }
    }
    flushRun();
    if (c.warmupEvents >= c.eventCount)
        c.warmupOps = c.ops.size();
    finalizeRunHints(c);
    return c;
}

void
finalizeRunHints(CompiledTrace &trace)
{
    trace.runHints.assign(trace.ops.size(), AccessRunHint{});
    std::uint64_t cursor = 0;
    for (std::size_t o = 0; o < trace.ops.size(); ++o) {
        const CompiledOp &op = trace.ops[o];
        if (op.kind != TraceEvent::Kind::Access)
            continue;
        AccessRunHint &h = trace.runHints[o];
        for (std::uint64_t j = 0; j < op.n; ++j) {
            const std::uint64_t idx = cursor + j;
            const Addr va = trace.vas[idx];
            if (testBit(trace.instrBits, idx)) {
                if (!h.anyInstr) {
                    h.anyInstr = true;
                    h.instrBase = va;
                }
                h.instrDiffOr |= va ^ h.instrBase;
            } else {
                if (!h.anyData) {
                    h.anyData = true;
                    h.dataBase = va;
                }
                h.dataDiffOr |= va ^ h.dataBase;
                h.anyWrite =
                    h.anyWrite || testBit(trace.writeBits, idx);
            }
        }
        cursor += op.n;
    }
}

Trace
decompileTrace(const CompiledTrace &compiled)
{
    Trace t;
    t.workload = compiled.workload;
    t.seed = compiled.seed;
    t.warmupEvents = compiled.warmupEvents;
    t.events.reserve(compiled.eventCount);
    std::uint64_t cursor = 0;
    for (const CompiledOp &op : compiled.ops) {
        if (op.kind == TraceEvent::Kind::Access) {
            for (std::uint64_t j = 0; j < op.n; ++j, ++cursor) {
                TraceEvent e;
                if (testBit(compiled.instrBits, cursor)) {
                    e.kind = TraceEvent::Kind::InstrFetch;
                } else {
                    e.kind = TraceEvent::Kind::Access;
                    e.flag = testBit(compiled.writeBits, cursor);
                }
                e.addr = compiled.vas[cursor];
                t.events.push_back(e);
            }
        } else {
            t.events.push_back(compiled.ctrl[op.n]);
        }
    }
    return t;
}

// ---------------------------------------------------------------------
// Batched replay
// ---------------------------------------------------------------------

BatchReplayWorkload::BatchReplayWorkload(
    std::shared_ptr<const CompiledTrace> trace, bool batched)
    : Workload(WorkloadParams{}), trace_(std::move(trace)),
      batched_(batched)
{
    ap_assert(trace_ != nullptr, "null compiled trace");
    params_.seed = trace_->seed;
    params_.operations = trace_->eventCount > trace_->warmupEvents
                             ? trace_->eventCount - trace_->warmupEvents
                             : 0;
}

std::string
BatchReplayWorkload::name() const
{
    return "replay:" + trace_->workload;
}

void
BatchReplayWorkload::init(WorkloadHost &host)
{
    next_op_ = 0;
    access_cursor_ = 0;
    machine_ = batched_ ? dynamic_cast<Machine *>(&host) : nullptr;
}

void
BatchReplayWorkload::resumeAtBoundary(Machine &machine)
{
    machine_ = batched_ ? &machine : nullptr;
    next_op_ = trace_->warmupOps;
    access_cursor_ = 0;
    for (std::uint64_t o = 0; o < trace_->warmupOps; ++o) {
        if (trace_->ops[o].kind == TraceEvent::Kind::Access)
            access_cursor_ += trace_->ops[o].n;
    }
}

void
BatchReplayWorkload::warmup(WorkloadHost &host)
{
    while (next_op_ < trace_->warmupOps)
        applyOp(host);
}

bool
BatchReplayWorkload::step(WorkloadHost &host)
{
    if (next_op_ >= trace_->ops.size())
        return false;
    applyOp(host);
    return next_op_ < trace_->ops.size();
}

void
BatchReplayWorkload::applyOp(WorkloadHost &host)
{
    const std::uint64_t op_index = next_op_++;
    const CompiledOp &op = trace_->ops[op_index];
    if (op.kind == TraceEvent::Kind::Access) {
        const std::uint64_t begin = access_cursor_;
        access_cursor_ += op.n;
        if (machine_) {
            const AccessRunHint *hint =
                op_index < trace_->runHints.size()
                    ? &trace_->runHints[op_index]
                    : nullptr;
            machine_->runAccessBatch(trace_->vas.data(),
                                     trace_->writeBits.data(),
                                     trace_->instrBits.data(), begin,
                                     op.n, hint);
            return;
        }
        for (std::uint64_t i = begin; i < begin + op.n; ++i) {
            if (testBit(trace_->instrBits, i))
                host.instrFetch(trace_->vas[i]);
            else
                host.access(trace_->vas[i],
                            testBit(trace_->writeBits, i));
        }
        return;
    }
    applyTraceEvent(host, trace_->ctrl[op.n]);
}

// ---------------------------------------------------------------------
// On-disk format v2
// ---------------------------------------------------------------------

bool
writeCompiledTrace(const CompiledTrace &trace, std::ostream &os)
{
    os.write(kMagicV2, sizeof(kMagicV2));
    std::uint64_t name_len = trace.workload.size();
    put(os, name_len);
    os.write(trace.workload.data(),
             static_cast<std::streamsize>(name_len));
    put(os, trace.seed);
    put(os, trace.warmupEvents);
    put(os, trace.warmupOps);
    put(os, trace.eventCount);
    std::uint64_t op_count = trace.ops.size();
    put(os, op_count);

    std::uint64_t cursor = 0;
    // Repack scratch comes from the per-thread pool: its capacity
    // survives across cells instead of being re-grown per write.
    PooledWords wloan, iloan;
    std::vector<std::uint64_t> &wbuf = *wloan, &ibuf = *iloan;
    for (const CompiledOp &op : trace.ops) {
        put(os, static_cast<std::uint8_t>(op.kind));
        if (op.kind == TraceEvent::Kind::Access) {
            put(os, op.n);
            os.write(reinterpret_cast<const char *>(&trace.vas[cursor]),
                     static_cast<std::streamsize>(op.n * sizeof(Addr)));
            // Bitmaps are re-packed per run (bit j = event j of this
            // run) so a streaming reader never needs global offsets.
            wbuf.assign(bitmapWords(op.n), 0);
            ibuf.assign(bitmapWords(op.n), 0);
            for (std::uint64_t j = 0; j < op.n; ++j) {
                if (testBit(trace.writeBits, cursor + j))
                    setBit(wbuf, j);
                if (testBit(trace.instrBits, cursor + j))
                    setBit(ibuf, j);
            }
            os.write(reinterpret_cast<const char *>(wbuf.data()),
                     static_cast<std::streamsize>(wbuf.size() * 8));
            os.write(reinterpret_cast<const char *>(ibuf.data()),
                     static_cast<std::streamsize>(ibuf.size() * 8));
            cursor += op.n;
        } else {
            const TraceEvent &e = trace.ctrl[op.n];
            put(os, e.addr);
            put(os, e.arg);
            put(os, e.fileId);
            std::uint8_t flags =
                (e.flag ? 1 : 0) | (e.fileBacked ? 2 : 0);
            put(os, flags);
        }
    }
    return bool(os);
}

namespace detail
{

bool
readCompiledTraceBody(std::istream &is, CompiledTrace &out)
{
    std::uint64_t name_len = 0;
    if (!get(is, name_len) || name_len > (1u << 20))
        return false;
    out.workload.resize(name_len);
    is.read(out.workload.data(), static_cast<std::streamsize>(name_len));
    std::uint64_t op_count = 0;
    if (!get(is, out.seed) || !get(is, out.warmupEvents) ||
        !get(is, out.warmupOps) || !get(is, out.eventCount) ||
        !get(is, op_count)) {
        return false;
    }

    out.vas.clear();
    out.writeBits.clear();
    out.instrBits.clear();
    out.ops.clear();
    out.ctrl.clear();
    out.ops.reserve(op_count);

    PooledWords wloan, iloan;
    std::vector<std::uint64_t> &wbuf = *wloan, &ibuf = *iloan;
    for (std::uint64_t o = 0; o < op_count; ++o) {
        std::uint8_t kind = 0;
        if (!get(is, kind) ||
            kind > static_cast<std::uint8_t>(
                       TraceEvent::Kind::SharePages)) {
            return false;
        }
        if (static_cast<TraceEvent::Kind>(kind) ==
            TraceEvent::Kind::Access) {
            std::uint64_t n = 0;
            if (!get(is, n) || n == 0 || n > kMaxRunEvents)
                return false;
            std::uint64_t base = out.vas.size();
            out.vas.resize(base + n);
            is.read(reinterpret_cast<char *>(&out.vas[base]),
                    static_cast<std::streamsize>(n * sizeof(Addr)));
            wbuf.assign(bitmapWords(n), 0);
            ibuf.assign(bitmapWords(n), 0);
            is.read(reinterpret_cast<char *>(wbuf.data()),
                    static_cast<std::streamsize>(wbuf.size() * 8));
            is.read(reinterpret_cast<char *>(ibuf.data()),
                    static_cast<std::streamsize>(ibuf.size() * 8));
            if (!is)
                return false;
            out.writeBits.resize(bitmapWords(base + n), 0);
            out.instrBits.resize(bitmapWords(base + n), 0);
            for (std::uint64_t j = 0; j < n; ++j) {
                if (testBit(wbuf, j))
                    setBit(out.writeBits, base + j);
                if (testBit(ibuf, j))
                    setBit(out.instrBits, base + j);
            }
            out.ops.push_back({TraceEvent::Kind::Access, n});
        } else {
            TraceEvent e;
            e.kind = static_cast<TraceEvent::Kind>(kind);
            std::uint8_t flags = 0;
            if (!get(is, e.addr) || !get(is, e.arg) ||
                !get(is, e.fileId) || !get(is, flags)) {
                return false;
            }
            e.flag = flags & 1;
            e.fileBacked = flags & 2;
            out.ops.push_back({e.kind, out.ctrl.size()});
            out.ctrl.push_back(e);
        }
    }
    // Hints are derived, not stored: recompute so replays of a trace
    // read from disk get the run-level fast path too.
    finalizeRunHints(out);
    return true;
}

} // namespace detail

bool
readCompiledTrace(std::istream &is, CompiledTrace &out)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0)
        return false;
    return detail::readCompiledTraceBody(is, out);
}

bool
writeCompiledTraceFile(const CompiledTrace &trace,
                       const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeCompiledTrace(trace, os);
}

bool
readCompiledTraceFile(const std::string &path, CompiledTrace &out)
{
    std::ifstream is(path, std::ios::binary);
    return is && readCompiledTrace(is, out);
}

} // namespace ap
