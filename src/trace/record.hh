/**
 * @file
 * Convenience glue: record a workload's event stream while running it
 * on a machine, preserving the machine's measurement protocol.
 */

#ifndef AGILEPAGING_TRACE_RECORD_HH
#define AGILEPAGING_TRACE_RECORD_HH

#include "sim/machine.hh"
#include "trace/trace.hh"

namespace ap
{

/** A recorded run: the trace plus the measurements of the recording
 *  run itself. */
struct RecordedRun
{
    Trace trace;
    RunResult result;
};

/**
 * Run @p workload on @p machine exactly as Machine::run would
 * (populate warmup, fast-forward fraction, measured remainder) while
 * capturing every WorkloadHost call into a trace. Replaying the trace
 * on an identically configured machine reproduces the run result.
 */
RecordedRun recordRun(Machine &machine, Workload &workload);

} // namespace ap

#endif // AGILEPAGING_TRACE_RECORD_HH
