/**
 * @file
 * Trace serialization and replay implementation.
 */

#include "trace/trace.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "base/logging.hh"
#include "trace/compiled_trace.hh"

namespace ap
{

namespace
{
constexpr char kMagic[8] = {'A', 'P', 'T', 'R', 'A', 'C', 'E', '1'};

template <typename T>
void
put(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
bool
get(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return bool(is);
}
} // namespace

TraceReplayWorkload::TraceReplayWorkload(Trace trace)
    : Workload(WorkloadParams{}), trace_(std::move(trace))
{
    params_.seed = trace_.seed;
    params_.operations =
        trace_.events.size() > trace_.warmupEvents
            ? trace_.events.size() - trace_.warmupEvents
            : 0;
}

std::string
TraceReplayWorkload::name() const
{
    return "replay:" + trace_.workload;
}

void
TraceReplayWorkload::init(WorkloadHost &host)
{
    (void)host;
    next_ = 0;
}

void
TraceReplayWorkload::warmup(WorkloadHost &host)
{
    while (next_ < trace_.warmupEvents && next_ < trace_.events.size()) {
        applyTraceEvent(host, trace_.events[next_]);
        ++next_;
    }
}

bool
TraceReplayWorkload::step(WorkloadHost &host)
{
    if (next_ >= trace_.events.size())
        return false;
    applyTraceEvent(host, trace_.events[next_]);
    ++next_;
    return next_ < trace_.events.size();
}

bool
writeTrace(const Trace &trace, std::ostream &os)
{
    return writeCompiledTrace(compileTrace(trace), os);
}

bool
writeTraceV1(const Trace &trace, std::ostream &os)
{
    os.write(kMagic, sizeof(kMagic));
    std::uint64_t name_len = trace.workload.size();
    put(os, name_len);
    os.write(trace.workload.data(),
             static_cast<std::streamsize>(name_len));
    put(os, trace.seed);
    put(os, trace.warmupEvents);
    std::uint64_t count = trace.events.size();
    put(os, count);
    for (const TraceEvent &e : trace.events) {
        put(os, static_cast<std::uint8_t>(e.kind));
        put(os, e.addr);
        put(os, e.arg);
        put(os, e.fileId);
        std::uint8_t flags = (e.flag ? 1 : 0) | (e.fileBacked ? 2 : 0);
        put(os, flags);
    }
    return bool(os);
}

bool
readTrace(std::istream &is, Trace &out)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is)
        return false;
    // Version sniff: v2 is the RLE/SoA compiled layout, v1 the legacy
    // per-event one. Both decode into the same in-memory Trace.
    if (std::memcmp(magic, "APTRACE2", 8) == 0) {
        CompiledTrace compiled;
        if (!detail::readCompiledTraceBody(is, compiled))
            return false;
        out = decompileTrace(compiled);
        return true;
    }
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return false;
    std::uint64_t name_len = 0;
    if (!get(is, name_len) || name_len > (1u << 20))
        return false;
    out.workload.resize(name_len);
    is.read(out.workload.data(), static_cast<std::streamsize>(name_len));
    std::uint64_t count = 0;
    if (!get(is, out.seed) || !get(is, out.warmupEvents) ||
        !get(is, count)) {
        return false;
    }
    out.events.clear();
    out.events.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceEvent e;
        std::uint8_t kind = 0, flags = 0;
        if (!get(is, kind) || !get(is, e.addr) || !get(is, e.arg) ||
            !get(is, e.fileId) || !get(is, flags)) {
            return false;
        }
        if (kind > static_cast<std::uint8_t>(
                       TraceEvent::Kind::SharePages)) {
            return false;
        }
        e.kind = static_cast<TraceEvent::Kind>(kind);
        e.flag = flags & 1;
        e.fileBacked = flags & 2;
        out.events.push_back(e);
    }
    return true;
}

bool
writeTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeTrace(trace, os);
}

bool
writeTraceFileV1(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeTraceV1(trace, os);
}

bool
readTraceFile(const std::string &path, Trace &out)
{
    std::ifstream is(path, std::ios::binary);
    return is && readTrace(is, out);
}

} // namespace ap
