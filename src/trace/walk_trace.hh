/**
 * @file
 * Per-walk event tracing: the observability layer over the MMU
 * simulation path.
 *
 * Every serviced TLB miss appends one compact WalkTraceRecord (VA,
 * mode, switch level, references per table, PWC/nTLB hits, trap causes
 * charged while servicing) to a bounded ring buffer. The summarizer
 * reconstructs the paper's Table VI coverage fractions and the hottest
 * walk shapes from the trace alone — bit-identically to the
 * in-simulator counters when no records were dropped — so a trace file
 * is a self-contained, inspectable account of where every translation
 * cycle went. Enabled by `--trace-walks=<path>` in the drivers and
 * summarized offline by `tools/walksum`.
 *
 * The buffer type is header-only so the Machine (ap_sim) can append
 * records without linking the trace library; file I/O and the
 * summarizer live in walk_trace.cc (ap_trace).
 */

#ifndef AGILEPAGING_TRACE_WALK_TRACE_HH
#define AGILEPAGING_TRACE_WALK_TRACE_HH

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hh"
#include "vmm/trap_costs.hh"
#include "walker/walk_result.hh"

namespace ap
{

/** One serviced TLB miss, compactly (26 payload bytes). */
struct WalkTraceRecord
{
    /** WalkTraceRecord::flags bits. */
    enum : std::uint8_t
    {
        kFlagWrite = 1 << 0,      ///< the access was a store
        kFlagInstr = 1 << 1,      ///< instruction fetch
        kFlagFullNested = 1 << 2, ///< walk ran fully nested incl gptr
    };

    /** Faulting guest virtual address of the missed access. */
    Addr va = 0;
    /** Process (address-space id) that took the miss. */
    ProcId asid = 0;
    /** VirtMode of the process's translation context. */
    std::uint8_t mode = 0;
    /** Effective PageSize of the final translation. */
    std::uint8_t pageSize = 0;
    /** kFlag* bits. */
    std::uint8_t flags = 0;
    /** Depth at which the successful walk entered nested mode
     *  (kPtLevels = never; Table VI switch level). */
    std::uint8_t switchDepth = 0;
    /** Memory references charged to the successful walk. */
    std::uint8_t refs = 0;
    /** Cache-cold (leaf) references among them. */
    std::uint8_t coldRefs = 0;
    /** References per table, indexed by WalkTable (nPT/gPT/hPT/sPT). */
    std::uint8_t refsByTable[kNumWalkTables] = {0, 0, 0, 0};
    /** Depth the PWC let the walk resume at (0 = walked from root). */
    std::uint8_t pwcStartDepth = 0;
    /** Host translations served by the nested TLB during the walk. */
    std::uint8_t ntlbHits = 0;
    /** Faulted walk attempts taken before this walk succeeded. */
    std::uint8_t faults = 0;
    /** Bitmask over TrapKind: every VM-exit cause charged while
     *  servicing this miss (fault handlers may charge several). */
    std::uint16_t trapMask = 0;

    bool write() const { return flags & kFlagWrite; }
    bool instr() const { return flags & kFlagInstr; }
    bool fullNested() const { return flags & kFlagFullNested; }
};

/**
 * Bounded ring buffer of walk records. When full, the oldest record is
 * overwritten and counted as dropped; appended() keeps the true total
 * so summaries can report truncation instead of hiding it.
 */
class WalkTraceBuffer
{
  public:
    explicit WalkTraceBuffer(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
        records_.reserve(std::min<std::size_t>(capacity_, 4096));
    }

    void
    append(const WalkTraceRecord &r)
    {
        if (records_.size() < capacity_) {
            records_.push_back(r);
        } else {
            records_[head_] = r;
            head_ = (head_ + 1) % capacity_;
        }
        ++appended_;
    }

    /** Forget everything recorded so far (measurement boundary). */
    void
    clear()
    {
        records_.clear();
        head_ = 0;
        appended_ = 0;
    }

    std::size_t size() const { return records_.size(); }
    std::size_t capacity() const { return capacity_; }
    /** Records ever appended, including overwritten ones. */
    std::uint64_t appended() const { return appended_; }
    /** Records lost to ring wrap-around. */
    std::uint64_t dropped() const { return appended_ - records_.size(); }

    /** Copy out the records oldest-first. */
    std::vector<WalkTraceRecord>
    snapshot() const
    {
        std::vector<WalkTraceRecord> out;
        out.reserve(records_.size());
        for (std::size_t i = 0; i < records_.size(); ++i)
            out.push_back(records_[(head_ + i) % records_.size()]);
        return out;
    }

  private:
    std::size_t capacity_;
    /** Oldest record (next overwrite target) once the ring is full. */
    std::size_t head_ = 0;
    std::uint64_t appended_ = 0;
    std::vector<WalkTraceRecord> records_;
};

/** A distinct walk shape: identical mode/switch/refs-per-table/cache
 *  behaviour, with one representative record and its frequency. */
struct WalkShape
{
    WalkTraceRecord sample{};
    std::uint64_t count = 0;
};

/** Everything the summarizer can reconstruct from a trace alone. */
struct WalkTraceSummary
{
    /** Successful walks in the trace (= records). */
    std::uint64_t walks = 0;
    /** Records lost to ring wrap (coverage is exact only when 0). */
    std::uint64_t dropped = 0;

    /** Table VI coverage classes: [0] full shadow, [1..4] entered
     *  nested below depth 3..0, [5] full nested incl gptr —
     *  the same classification Walker::recordCoverage applies. */
    std::uint64_t coverageCounts[6] = {0, 0, 0, 0, 0, 0};
    double coverage[6] = {0, 0, 0, 0, 0, 0};

    std::uint64_t refsTotal = 0;
    double avgWalkRefs = 0.0;

    /** Misses whose servicing charged each VM-exit cause. */
    std::uint64_t trapByCause[kNumTrapKinds] = {};
    /** Misses that needed at least one fault-servicing retry. */
    std::uint64_t faultedMisses = 0;
    /** Walks the PWC let resume below the root. */
    std::uint64_t pwcResumed = 0;
    /** Total nested-TLB hits across all walks. */
    std::uint64_t ntlbHits = 0;

    /** Most frequent walk shapes, descending by count. */
    std::vector<WalkShape> topShapes;
};

/** Classify one record into its Table VI coverage column [0..5]. */
unsigned coverageClass(const WalkTraceRecord &r);

/** Summarize records (oldest-first) with @p dropped trailing context. */
WalkTraceSummary summarizeWalkTrace(
    const std::vector<WalkTraceRecord> &records, std::uint64_t dropped,
    std::size_t top_shapes = 10);

WalkTraceSummary summarizeWalkTrace(const WalkTraceBuffer &buffer,
                                    std::size_t top_shapes = 10);

/** Render a summary as text (walksum's output; Table-VI-style). */
void printWalkTraceSummary(std::ostream &os,
                           const WalkTraceSummary &summary);

/** One-line human rendering of a record's shape ("sPT:2 gPT:2 ..."). */
std::string walkShapeLabel(const WalkTraceRecord &r);

/** Serialize (binary, versioned). @return success. */
bool writeWalkTrace(const WalkTraceBuffer &buffer, std::ostream &os);
bool writeWalkTraceFile(const WalkTraceBuffer &buffer,
                        const std::string &path);

/** Deserialize. @return false on format/version mismatch. */
bool readWalkTrace(std::istream &is,
                   std::vector<WalkTraceRecord> &records,
                   std::uint64_t &dropped);
bool readWalkTraceFile(const std::string &path,
                       std::vector<WalkTraceRecord> &records,
                       std::uint64_t &dropped);

} // namespace ap

#endif // AGILEPAGING_TRACE_WALK_TRACE_HH
