/**
 * @file
 * Record-once/replay-many trace cache for the evaluation matrix.
 *
 * Cells of the matrix that differ only in MMU mode issue byte-
 * identical operation streams: the stream is a pure function of
 * (workload, page size, operations, seed, footprint, warmup
 * fraction). The TraceCache memoizes each unique stream — the first
 * cell to ask records it through TraceRecorder and keeps its own
 * RunResult; every later cell replays the shared compiled trace
 * through the batched fast path. First-wins memoization is
 * thread-safe under the parallel_runner pool: losers of the insert
 * race block on a shared_future until the winner's recording lands.
 */

#ifndef AGILEPAGING_TRACE_TRACE_CACHE_HH
#define AGILEPAGING_TRACE_TRACE_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/experiment.hh"
#include "sim/machine_pool.hh"
#include "sim/snapshot.hh"
#include "trace/compiled_trace.hh"

namespace ap
{

/** Everything the operation stream depends on. Mode is absent by
 *  design — that is the whole point of sharing. */
struct TraceCacheKey
{
    std::string workload;
    PageSize pageSize = PageSize::Size4K;
    std::uint64_t operations = 0;
    std::uint64_t seed = 0;
    std::uint64_t footprintBytes = 0;
    double warmupFraction = 0.0;

    bool
    operator==(const TraceCacheKey &o) const
    {
        return workload == o.workload && pageSize == o.pageSize &&
               operations == o.operations && seed == o.seed &&
               footprintBytes == o.footprintBytes &&
               warmupFraction == o.warmupFraction;
    }
};

struct TraceCacheKeyHash
{
    std::size_t
    operator()(const TraceCacheKey &k) const
    {
        std::size_t h = std::hash<std::string>{}(k.workload);
        auto mix = [&h](std::uint64_t v) {
            h ^= std::hash<std::uint64_t>{}(v) + 0x9e3779b97f4a7c15ull +
                 (h << 6) + (h >> 2);
        };
        mix(static_cast<std::uint64_t>(k.pageSize));
        mix(k.operations);
        mix(k.seed);
        mix(k.footprintBytes);
        mix(std::hash<double>{}(k.warmupFraction));
        return h;
    }
};

/**
 * Thread-safe first-wins memo of compiled traces. One instance per
 * matrix run; drop it to release the traces.
 */
class TraceCache
{
  public:
    using TracePtr = std::shared_ptr<const CompiledTrace>;
    using RecordFn = std::function<TracePtr()>;

    /**
     * Return the compiled trace for @p key, invoking @p record to
     * produce it if this is the first request. Concurrent requests
     * for the same key run @p record exactly once; the others block
     * until it completes. An exception from @p record propagates to
     * every blocked requester (and the caller).
     */
    TracePtr obtain(const TraceCacheKey &key, const RecordFn &record);

    /** Cells that recorded (cache misses). */
    std::uint64_t records() const;
    /** Cells that reused a recorded trace (cache hits). */
    std::uint64_t replays() const;

  private:
    mutable std::mutex mu_;
    std::unordered_map<TraceCacheKey, std::shared_future<TracePtr>,
                       TraceCacheKeyHash>
        map_;
    std::uint64_t records_ = 0;
    std::uint64_t replays_ = 0;
};

/**
 * Run one cell through the cache: the first cell per key records (and
 * returns its own fresh-run result — no replay cost), later cells
 * replay the shared trace on their own Machine. Results are
 * bit-identical to runExperiment for every cell.
 * @param batched false = per-event replay (A/B verification)
 */
RunResult runCellCached(TraceCache &cache,
                        const std::string &workload_name,
                        const WorkloadParams &params,
                        const SimConfig &cfg, bool batched = true);

/** runExperiment, but through the cache. */
RunResult runExperimentCached(TraceCache &cache,
                              const ExperimentSpec &spec,
                              bool batched = true);

/**
 * A CellFn for runExperiments/runFigure5Matrix that routes every cell
 * through @p cache. The cache must outlive the returned function.
 */
CellFn cachedCellFn(TraceCache &cache, bool batched = true);

/**
 * Run one cell through both caches: the trace cache dedupes the
 * operation stream across cells (as runCellCached), and the snapshot
 * cache dedupes the *warm machine state* across cells whose full
 * config matches. The first cell per snapshot key replays warmup once
 * and freezes the machine at the measurement boundary; every later
 * identical cell forks a fresh Machine from the frozen image and runs
 * only the measured region. Results are bit-identical to
 * runExperiment for every cell.
 * @param pool optional machine-storage pool: forked cells lease a
 *        parked same-digest Machine (arena slabs and frame vectors
 *        warm) instead of constructing one, and park it back after the
 *        measured region. Results are bit-identical either way.
 */
RunResult runCellSnapshotted(TraceCache &traces, SnapshotCache &snaps,
                             const std::string &workload_name,
                             const WorkloadParams &params,
                             const SimConfig &cfg, bool batched = true,
                             MachinePool *pool = nullptr);

/** runExperiment, but through both caches. */
RunResult runExperimentSnapshotted(TraceCache &traces,
                                   SnapshotCache &snaps,
                                   const ExperimentSpec &spec,
                                   bool batched = true,
                                   MachinePool *pool = nullptr);

/**
 * runCellCached for a caller-supplied workload instance (one the
 * registry cannot build — e.g. a bench-local synthetic workload).
 * @p cache_name keys the cache; see runWorkloadSnapshotted.
 */
RunResult runWorkloadCached(TraceCache &traces,
                            const std::string &cache_name,
                            Workload &workload, const SimConfig &cfg,
                            bool batched = true);

/**
 * runCellSnapshotted for a caller-supplied workload instance (one the
 * registry cannot build — e.g. a bench-local synthetic workload).
 * @p cache_name keys the caches and must uniquely identify the
 * workload's behavior beyond its params (encode any extra knobs in
 * it). Only the first caller per trace key steps @p workload; later
 * calls replay the recorded stream and ignore it.
 */
RunResult runWorkloadSnapshotted(TraceCache &traces,
                                 SnapshotCache &snaps,
                                 const std::string &cache_name,
                                 Workload &workload,
                                 const SimConfig &cfg,
                                 bool batched = true,
                                 MachinePool *pool = nullptr);

/**
 * A CellFn routing every cell through both caches. Both caches (and
 * the pool, if given) must outlive the returned function.
 */
CellFn snapshotCellFn(TraceCache &traces, SnapshotCache &snaps,
                      bool batched = true, MachinePool *pool = nullptr);

} // namespace ap

#endif // AGILEPAGING_TRACE_TRACE_CACHE_HH
