/**
 * @file
 * Streaming trace reader / replay implementation.
 */

#include "trace/trace_stream.hh"

#include <cstring>

namespace ap
{

namespace
{
template <typename T>
bool
get(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return bool(is);
}

std::uint64_t
bitmapWords(std::uint64_t n)
{
    return (n + 63) / 64;
}

/** Replay chunk size: small relative to kMaxRunEvents, large enough
 *  to amortize refill overhead. */
constexpr std::size_t kReplayChunk = 4096;
} // namespace

TraceFileReader::TraceFileReader(const std::string &path)
    : is_(path, std::ios::binary)
{
    if (is_ && !readHeader())
        version_ = 0;
}

bool
TraceFileReader::readHeader()
{
    char magic[8];
    is_.read(magic, sizeof(magic));
    if (!is_)
        return false;
    if (std::memcmp(magic, "APTRACE2", 8) == 0)
        version_ = 2;
    else if (std::memcmp(magic, "APTRACE1", 8) == 0)
        version_ = 1;
    else
        return false;

    std::uint64_t name_len = 0;
    if (!get(is_, name_len) || name_len > (1u << 20))
        return false;
    workload_.resize(name_len);
    is_.read(workload_.data(), static_cast<std::streamsize>(name_len));
    if (!get(is_, seed_) || !get(is_, warmup_))
        return false;
    if (version_ == 2) {
        std::uint64_t warmup_ops = 0; // replay recomputes its own
        if (!get(is_, warmup_ops) || !get(is_, event_count_) ||
            !get(is_, op_count_)) {
            return false;
        }
    } else {
        if (!get(is_, event_count_))
            return false;
    }
    return bool(is_);
}

bool
TraceFileReader::refillRun()
{
    std::uint64_t n = 0;
    if (!get(is_, n) || n == 0 || n > kMaxRunEvents) {
        bad_ = true;
        return false;
    }
    run_vas_.resize(n);
    is_.read(reinterpret_cast<char *>(run_vas_.data()),
             static_cast<std::streamsize>(n * sizeof(Addr)));
    run_w_.assign(bitmapWords(n), 0);
    run_i_.assign(bitmapWords(n), 0);
    is_.read(reinterpret_cast<char *>(run_w_.data()),
             static_cast<std::streamsize>(run_w_.size() * 8));
    is_.read(reinterpret_cast<char *>(run_i_.data()),
             static_cast<std::streamsize>(run_i_.size() * 8));
    if (!is_) {
        bad_ = true;
        return false;
    }
    run_pos_ = 0;
    return true;
}

std::size_t
TraceFileReader::next(std::vector<TraceEvent> &out, std::size_t max)
{
    out.clear();
    if (!ok())
        return 0;

    if (version_ == 1) {
        while (out.size() < max && events_read_ < event_count_) {
            TraceEvent e;
            std::uint8_t kind = 0, flags = 0;
            if (!get(is_, kind) || !get(is_, e.addr) ||
                !get(is_, e.arg) || !get(is_, e.fileId) ||
                !get(is_, flags) ||
                kind > static_cast<std::uint8_t>(
                           TraceEvent::Kind::SharePages)) {
                bad_ = true;
                break;
            }
            e.kind = static_cast<TraceEvent::Kind>(kind);
            e.flag = flags & 1;
            e.fileBacked = flags & 2;
            out.push_back(e);
            ++events_read_;
        }
        return out.size();
    }

    while (out.size() < max && events_read_ < event_count_) {
        if (run_pos_ < run_vas_.size()) {
            // Drain the in-progress access run.
            std::uint64_t j = run_pos_++;
            TraceEvent e;
            if (testBit(run_i_, j)) {
                e.kind = TraceEvent::Kind::InstrFetch;
            } else {
                e.kind = TraceEvent::Kind::Access;
                e.flag = testBit(run_w_, j);
            }
            e.addr = run_vas_[j];
            out.push_back(e);
            ++events_read_;
            continue;
        }
        if (ops_read_ >= op_count_)
            break;
        std::uint8_t kind = 0;
        if (!get(is_, kind) ||
            kind > static_cast<std::uint8_t>(
                       TraceEvent::Kind::SharePages)) {
            bad_ = true;
            break;
        }
        ++ops_read_;
        if (static_cast<TraceEvent::Kind>(kind) ==
            TraceEvent::Kind::Access) {
            if (!refillRun())
                break;
            continue;
        }
        TraceEvent e;
        e.kind = static_cast<TraceEvent::Kind>(kind);
        std::uint8_t flags = 0;
        if (!get(is_, e.addr) || !get(is_, e.arg) ||
            !get(is_, e.fileId) || !get(is_, flags)) {
            bad_ = true;
            break;
        }
        e.flag = flags & 1;
        e.fileBacked = flags & 2;
        out.push_back(e);
        ++events_read_;
    }
    return out.size();
}

// ---------------------------------------------------------------------
// StreamReplayWorkload
// ---------------------------------------------------------------------

StreamReplayWorkload::StreamReplayWorkload(const std::string &path)
    : Workload(WorkloadParams{}), path_(path),
      reader_(std::make_unique<TraceFileReader>(path))
{
    if (reader_->ok()) {
        params_.seed = reader_->seed();
        params_.operations =
            reader_->eventCount() > reader_->warmupEvents()
                ? reader_->eventCount() - reader_->warmupEvents()
                : 0;
    }
}

std::string
StreamReplayWorkload::name() const
{
    return "replay:" + (reader_ ? reader_->workload() : std::string());
}

void
StreamReplayWorkload::init(WorkloadHost &host)
{
    (void)host;
    // Forward-only reader: rewind by reopening.
    reader_ = std::make_unique<TraceFileReader>(path_);
    buf_.clear();
    buf_pos_ = 0;
    applied_ = 0;
}

bool
StreamReplayWorkload::applyNext(WorkloadHost &host)
{
    if (buf_pos_ >= buf_.size()) {
        buf_pos_ = 0;
        if (!reader_->next(buf_, kReplayChunk))
            return false;
    }
    applyTraceEvent(host, buf_[buf_pos_++]);
    ++applied_;
    return true;
}

void
StreamReplayWorkload::warmup(WorkloadHost &host)
{
    while (applied_ < reader_->warmupEvents()) {
        if (!applyNext(host))
            break;
    }
}

bool
StreamReplayWorkload::step(WorkloadHost &host)
{
    if (!applyNext(host))
        return false;
    return applied_ < reader_->eventCount();
}

} // namespace ap
