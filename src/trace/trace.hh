/**
 * @file
 * Workload trace recording and replay.
 *
 * The paper's evaluation is built on traces: trace-cmd captured guest
 * page-table updates and BadgerTrap captured TLB misses (Section VI).
 * This module provides the equivalent artifact for the simulator: a
 * TraceRecorder captures the full event stream a workload issues
 * through the WorkloadHost interface, TraceWriter/TraceReader persist
 * it, and TraceReplayWorkload plays a captured stream back as a
 * first-class workload — so one captured run can be re-simulated under
 * every technique, or shipped as a reproducible input.
 */

#ifndef AGILEPAGING_TRACE_TRACE_HH
#define AGILEPAGING_TRACE_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace ap
{

/** One recorded WorkloadHost call. */
struct TraceEvent
{
    enum class Kind : std::uint8_t
    {
        Access,
        InstrFetch,
        Mmap,
        MmapAt,
        Munmap,
        Compute,
        ForkTouchExit,
        Yield,
        ReclaimTick,
        SharePages,
    };

    Kind kind = Kind::Access;
    /** Access/fetch VA; mmap/munmap base. */
    Addr addr = 0;
    /** mmap/munmap length; compute instructions; fork touch pages;
     *  reclaim max pages. */
    std::uint64_t arg = 0;
    /** mmap file id. */
    std::uint64_t fileId = 0;
    /** Access: write flag; mmap: writable flag. */
    bool flag = false;
    /** Mmap/MmapAt: file-backed. */
    bool fileBacked = false;

    bool
    operator==(const TraceEvent &o) const
    {
        return kind == o.kind && addr == o.addr && arg == o.arg &&
               fileId == o.fileId && flag == o.flag &&
               fileBacked == o.fileBacked;
    }
};

/** An in-memory trace. */
struct Trace
{
    /** Name of the traced workload (metadata). */
    std::string workload;
    std::uint64_t seed = 0;
    std::vector<TraceEvent> events;
    /** Index of the first post-warmup event (replay measurement
     *  boundary). */
    std::uint64_t warmupEvents = 0;
};

/**
 * Apply one recorded event to a host. This is the replay primitive
 * shared by TraceReplayWorkload and the differential oracle (which
 * lock-steps several machines through the same event and therefore
 * cannot use the Workload interface).
 */
inline void
applyTraceEvent(WorkloadHost &host, const TraceEvent &e)
{
    switch (e.kind) {
      case TraceEvent::Kind::Access:
        host.access(e.addr, e.flag);
        break;
      case TraceEvent::Kind::InstrFetch:
        host.instrFetch(e.addr);
        break;
      case TraceEvent::Kind::Mmap:
      case TraceEvent::Kind::MmapAt:
        host.mmapAt(e.addr, e.arg, e.flag, e.fileBacked, e.fileId);
        break;
      case TraceEvent::Kind::Munmap:
        host.munmap(e.addr, e.arg);
        break;
      case TraceEvent::Kind::Compute:
        host.compute(e.arg);
        break;
      case TraceEvent::Kind::ForkTouchExit:
        host.forkTouchExit(e.arg);
        break;
      case TraceEvent::Kind::Yield:
        host.yield();
        break;
      case TraceEvent::Kind::ReclaimTick:
        host.reclaimTick(e.arg);
        break;
      case TraceEvent::Kind::SharePages:
        host.sharePagesScan();
        break;
    }
}

/**
 * WorkloadHost decorator: forwards every call to an inner host while
 * appending it to a trace.
 */
class TraceRecorder : public WorkloadHost
{
  public:
    explicit TraceRecorder(WorkloadHost &inner) : inner_(inner) {}

    /** Mark everything recorded so far as warmup. */
    void markWarmupBoundary() { trace_.warmupEvents = trace_.events.size(); }

    Trace &trace() { return trace_; }
    const Trace &trace() const { return trace_; }

    Addr
    mmap(Addr length, bool writable, bool file_backed,
         std::uint64_t file_id) override
    {
        Addr base = inner_.mmap(length, writable, file_backed, file_id);
        TraceEvent e;
        // Record the *resolved* base so replay is address-exact.
        e.kind = TraceEvent::Kind::MmapAt;
        e.addr = base;
        e.arg = length;
        e.fileId = file_id;
        e.flag = writable;
        e.fileBacked = file_backed;
        trace_.events.push_back(e);
        return base;
    }

    bool
    mmapAt(Addr base, Addr length, bool writable, bool file_backed,
           std::uint64_t file_id) override
    {
        bool ok =
            inner_.mmapAt(base, length, writable, file_backed, file_id);
        if (ok) {
            TraceEvent e;
            e.kind = TraceEvent::Kind::MmapAt;
            e.addr = base;
            e.arg = length;
            e.fileId = file_id;
            e.flag = writable;
            e.fileBacked = file_backed;
            trace_.events.push_back(e);
        }
        return ok;
    }

    void
    munmap(Addr base, Addr length) override
    {
        inner_.munmap(base, length);
        trace_.events.push_back(
            TraceEvent{TraceEvent::Kind::Munmap, base, length, 0, false,
                       false});
    }

    void
    access(Addr va, bool write) override
    {
        inner_.access(va, write);
        trace_.events.push_back(
            TraceEvent{TraceEvent::Kind::Access, va, 0, 0, write, false});
    }

    void
    instrFetch(Addr va) override
    {
        inner_.instrFetch(va);
        trace_.events.push_back(
            TraceEvent{TraceEvent::Kind::InstrFetch, va, 0, 0, false,
                       false});
    }

    void
    compute(std::uint64_t n) override
    {
        inner_.compute(n);
        trace_.events.push_back(
            TraceEvent{TraceEvent::Kind::Compute, 0, n, 0, false, false});
    }

    void
    forkTouchExit(std::uint64_t touch_pages) override
    {
        inner_.forkTouchExit(touch_pages);
        trace_.events.push_back(TraceEvent{
            TraceEvent::Kind::ForkTouchExit, 0, touch_pages, 0, false,
            false});
    }

    void
    yield() override
    {
        inner_.yield();
        trace_.events.push_back(
            TraceEvent{TraceEvent::Kind::Yield, 0, 0, 0, false, false});
    }

    void
    reclaimTick(std::uint64_t max_pages) override
    {
        inner_.reclaimTick(max_pages);
        trace_.events.push_back(TraceEvent{TraceEvent::Kind::ReclaimTick,
                                           0, max_pages, 0, false,
                                           false});
    }

    void
    sharePagesScan() override
    {
        inner_.sharePagesScan();
        trace_.events.push_back(TraceEvent{TraceEvent::Kind::SharePages,
                                           0, 0, 0, false, false});
    }

    Rng &rng() override { return inner_.rng(); }

  private:
    WorkloadHost &inner_;
    Trace trace_;
};

/**
 * Replays a captured trace as a workload. Mmap events replay at their
 * recorded bases, so the address stream is bit-exact; replaying the
 * same trace under different techniques isolates the technique's
 * effect the way the paper's trace-driven methodology does.
 */
class TraceReplayWorkload : public Workload
{
  public:
    explicit TraceReplayWorkload(Trace trace);

    std::string name() const override;
    void init(WorkloadHost &host) override;
    void warmup(WorkloadHost &host) override;
    bool step(WorkloadHost &host) override;
    /** The recorded warmup boundary is authoritative. */
    bool selfWarmup() const override { return true; }

  private:
    Trace trace_;
    std::uint64_t next_ = 0;
};

/**
 * Serialize a trace (binary, versioned). Writes the compact RLE/SoA
 * format v2 ("APTRACE2", ~8.25 bytes per access). @return success.
 */
bool writeTrace(const Trace &trace, std::ostream &os);
bool writeTraceFile(const Trace &trace, const std::string &path);

/** Serialize in the legacy per-event format v1 ("APTRACE1"). */
bool writeTraceV1(const Trace &trace, std::ostream &os);
bool writeTraceFileV1(const Trace &trace, const std::string &path);

/** Deserialize either format version. @return false on mismatch. */
bool readTrace(std::istream &is, Trace &out);
bool readTraceFile(const std::string &path, Trace &out);

} // namespace ap

#endif // AGILEPAGING_TRACE_TRACE_HH
