/**
 * @file
 * Translation-coherence domain: the broadcast fabric that keeps every
 * vCPU's private TLB/PWC stack consistent with the shared guest,
 * shadow, and nested page tables.
 *
 * Real guests pay for this either with software shootdowns (the
 * initiating vCPU IPIs every sibling and spins for acknowledgements)
 * or with HATRIC-style hardware translation coherence, where the
 * fabric invalidates remote entries without interrupting the remote
 * cores. The domain models both as a per-remote-vCPU cycle charge and
 * counts every shootdown by cause so the evaluation can attribute
 * coherence traffic to munmap, COW, reclaim, mode switches, and shadow
 * resyncs separately.
 *
 * With a single registered vCPU the domain degenerates to plain local
 * flushes with no counters and no cycles — a 1-vCPU machine is
 * bit-identical to one built before this subsystem existed.
 */

#ifndef AGILEPAGING_TLB_COHERENCE_HH
#define AGILEPAGING_TLB_COHERENCE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "tlb/pwc.hh"
#include "tlb/tlb_hierarchy.hh"

namespace ap
{

/** How remote vCPU TLBs learn about translation invalidations. */
enum class TlbCoherence
{
    /** Software shootdowns: the initiating vCPU sends an IPI to every
     *  remote vCPU and waits for acknowledgement. */
    Software,
    /** HATRIC-style hardware translation coherence: remote entries are
     *  invalidated by the coherence fabric without interrupting the
     *  remote cores (Yan et al.). */
    Hardware,
};

const char *tlbCoherenceName(TlbCoherence c);

/** Why a shootdown was issued (one counter per cause). */
enum class CoherenceCause
{
    /** Guest munmap / mapping teardown. */
    Munmap,
    /** Guest copy-on-write break. */
    Cow,
    /** Guest fork dropping write permission on the parent. */
    Fork,
    /** Guest process exit tearing down the address space. */
    Exit,
    /** Guest reclaim scan revoking mappings. */
    Reclaim,
    /** Agile mode switch re-homing part of the translation path. */
    ModeSwitch,
    /** Shadow-table resync / invlpg emulation. */
    Resync,
    /** Host-side remap (host COW break, page sharing). */
    HostRemap,
};

constexpr std::size_t kNumCoherenceCauses = 8;

const char *coherenceCauseName(CoherenceCause c);

/**
 * Observer of translation invalidations flowing through a
 * CoherenceDomain. Translation backends that cache derived mapping
 * state outside the TLB/PWC stacks (e.g. the range backend's segment
 * registers) register one of these so every invalidation that reaches
 * the TLBs also reaches them — a segment that survived a munmap is
 * exactly the "missed invalidation" bug class the difftest hunts.
 *
 * Listeners observe only; they never add shootdown traffic or cycles
 * of their own (their structures are invalidated by the same broadcast
 * the TLBs already paid for).
 */
class CoherenceListener
{
  public:
    virtual ~CoherenceListener() = default;

    /** One page's translation was invalidated for @p asid. */
    virtual void onFlushPage(Addr va, ProcId asid) = 0;

    /** [base, base+len) was invalidated for @p asid. */
    virtual void onFlushRange(Addr base, Addr len, ProcId asid) = 0;

    /** A whole address space was invalidated (exit/reap included). */
    virtual void onFlushAsid(ProcId asid) = 0;

    /** Everything was invalidated. */
    virtual void onFlushAll() = 0;
};

/**
 * The coherence domain shared by every vCPU of a guest.
 *
 * Each vCPU registers its private TLB hierarchy and page-walk cache;
 * every invalidation then reaches all registered stacks. Invalidation
 * scope mirrors what the single-vCPU call sites did (page-scoped calls
 * touch only the TLBs; range/asid/all-scoped calls touch TLBs and
 * PWCs), so a domain with one vCPU is a drop-in replacement.
 */
class CoherenceDomain : public stats::StatGroup
{
  public:
    /**
     * @param parent      stat parent (the machine)
     * @param kind        software IPIs or hardware invalidations
     * @param ipi_cycles  per-remote-vCPU cost in software mode
     * @param hw_cycles   per-remote-vCPU cost in hardware mode
     */
    CoherenceDomain(stats::StatGroup *parent, TlbCoherence kind,
                    Cycles ipi_cycles, Cycles hw_cycles);

    /** Register one vCPU's private translation stack. Registration
     *  order is vCPU id order. @p pwc may be null (TLB-only stack). */
    void addVcpu(TlbHierarchy *tlb, PageWalkCache *pwc);

    /** Register an invalidation observer (not owned). Every flush
     *  reaching the vCPU stacks is mirrored to every listener,
     *  including the uncharged reap-path flush. */
    void addListener(CoherenceListener *l) { listeners_.push_back(l); }

    std::size_t numVcpus() const { return tlbs_.size(); }

    /** Invalidate one page's translation in every vCPU's TLBs (the
     *  existing page-scoped sites never touched the PWC). */
    void flushPage(Addr va, ProcId asid, CoherenceCause cause);

    /** Invalidate [base, base+len) for @p asid in every vCPU's TLBs
     *  and PWCs. */
    void flushRange(Addr base, Addr len, ProcId asid,
                    CoherenceCause cause);

    /** Invalidate an address space in every vCPU's TLBs and PWCs. */
    void flushAsid(ProcId asid, CoherenceCause cause);

    /**
     * flushAsid without any shootdown accounting: reaping a process
     * whose address space was already torn down (and shot down) at
     * exit. Nothing live can be cached, so no guest-visible IPI is
     * modelled — this is bookkeeping hygiene, not coherence traffic.
     */
    void flushAsidUncharged(ProcId asid);

    /** Invalidate everything in every vCPU's TLBs and PWCs. */
    void flushAll(CoherenceCause cause);

    /** Guest-visible cycles spent on remote invalidations so far. */
    Cycles cycles() const { return total_cycles_; }

    std::uint64_t shootdownCount() const
    { return static_cast<std::uint64_t>(shootdowns_.value()); }

    std::uint64_t remoteInvalidationCount() const
    { return static_cast<std::uint64_t>(remote_invals_.value()); }

    std::uint64_t
    shootdownsByCause(CoherenceCause c) const
    {
        return static_cast<std::uint64_t>(
            by_cause_[static_cast<std::size_t>(c)]->value());
    }

    TlbCoherence kind() const { return kind_; }

    /** The cycle total travels with the stats tree (it backs a Scalar);
     *  nothing else needs explicit snapshot state. */
    void saveState(Serializer &s) const { s.putU64(total_cycles_); }
    void restoreState(Deserializer &d) { total_cycles_ = d.getU64(); }

  private:
    /** Charge one broadcast: counters plus per-remote cycles. A domain
     *  with no remotes charges nothing. */
    void charge(CoherenceCause cause);

    TlbCoherence kind_;
    Cycles ipi_cycles_;
    Cycles hw_cycles_;
    Cycles total_cycles_ = 0;

    std::vector<TlbHierarchy *> tlbs_;
    std::vector<PageWalkCache *> pwcs_;
    std::vector<CoherenceListener *> listeners_;

    stats::Scalar shootdowns_;
    stats::Scalar remote_invals_;
    stats::Scalar coherence_cycles_;
    std::vector<std::unique_ptr<stats::Scalar>> by_cause_;
};

} // namespace ap

#endif // AGILEPAGING_TLB_COHERENCE_HH
