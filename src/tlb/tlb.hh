/**
 * @file
 * A single TLB structure holding translations for one page size.
 *
 * Regardless of virtualization technique the TLB maps gVA directly to a
 * host frame (VA to PA when native) — the paper's Table I "TLB hit"
 * row: hits are equally fast in every mode.
 */

#ifndef AGILEPAGING_TLB_TLB_HH
#define AGILEPAGING_TLB_TLB_HH

#include <optional>
#include <string>

#include "base/serialize.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "tlb/assoc_cache.hh"

namespace ap
{

/** Payload of one TLB entry. */
struct TlbEntry
{
    /** Final (host) frame; for a 2M/1G entry, the frame of the base. */
    FrameId pfn = 0;
    /** Write permission as seen by hardware (shadow may clear it). */
    bool writable = false;
    /** Leaf dirty state at fill time. A store through a clean entry
     *  must re-walk so the hardware can set the in-memory dirty bit
     *  (x86 SDM: the cached translation alone cannot satisfy it). */
    bool dirty = false;
    /** Global/asid: entries are tagged, flushed per-asid. */
    ProcId asid = 0;
};

/**
 * One set-associative TLB for a fixed page size.
 */
class Tlb : public stats::StatGroup
{
  public:
    /**
     * @param name     stat name ("l1d4k" etc.)
     * @param parent   stat parent group (may be nullptr)
     * @param entries  total entries
     * @param ways     associativity
     * @param ps       page size this TLB holds
     */
    Tlb(const std::string &name, stats::StatGroup *parent,
        std::size_t entries, std::size_t ways, PageSize ps);

    /**
     * Probe for (va, asid).
     * @return the entry on hit (after LRU update), nullopt on miss.
     */
    std::optional<TlbEntry> lookup(Addr va, ProcId asid);

    /**
     * Hot-path probe: identical to lookup() (LRU refresh, hit/miss
     * stats) but returns a pointer into the cache instead of copying
     * the entry through an optional. The pointer is valid until the
     * next mutating call.
     */
    const TlbEntry *
    find(Addr va, ProcId asid)
    {
        if (TlbEntry *e = cache_.lookup(key(va, asid))) {
            ++hits;
            return e;
        }
        ++misses;
        return nullptr;
    }

    /**
     * find() with the hit/miss stat charge deferred to the caller
     * (TlbHierarchy's batched probe path accumulates the charges in a
     * RefillPending and flushes them in bulk at block boundaries).
     * LRU state still updates exactly as find() would.
     */
    const TlbEntry *
    findQuiet(Addr va, ProcId asid)
    {
        return cache_.lookup(key(va, asid));
    }

    /** Probe without updating LRU or stats. */
    bool contains(Addr va, ProcId asid) const;

    /** Install a translation (evicts LRU within the set if needed). */
    void
    insert(Addr va, ProcId asid, const TlbEntry &entry)
    {
        if (cache_.insert(key(va, asid), entry))
            ++evictions;
    }

    /** insert() with the eviction stat charge deferred to the caller.
     *  @return true if a live entry was evicted. */
    bool
    insertQuiet(Addr va, ProcId asid, const TlbEntry &entry)
    {
        return cache_.insert(key(va, asid), entry);
    }

    /** Invalidate one page's translation. */
    void flushPage(Addr va, ProcId asid);

    /** Invalidate every translation belonging to @p asid. */
    void flushAsid(ProcId asid);

    /** Invalidate translations of @p asid inside [base, base+len). */
    void flushRange(Addr base, Addr len, ProcId asid);

    /** Invalidate everything. */
    void flushAll();

    PageSize pageSize() const { return ps_; }
    std::size_t size() const { return cache_.size(); }

    /** Visit every live entry as @p fn(va, asid, entry), va decoded to
     *  the entry's page base. LRU state is untouched (invariant
     *  sweeps). */
    template <typename Fn>
    void
    forEach(const Fn &fn) const
    {
        cache_.forEach([&](std::uint64_t k, const TlbEntry &e) {
            Addr va = (k & ((std::uint64_t{1} << 40) - 1)) << shift_;
            fn(va, static_cast<ProcId>(k >> 40), e);
        });
    }

    /** Snapshot support (stat counters travel via the stats tree). */
    void saveState(Serializer &s) const { cache_.saveState(s); }
    void restoreState(Deserializer &d) { cache_.restoreState(d); }

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions;

  private:
    std::uint64_t
    key(Addr va, ProcId asid) const
    {
        // vpn in the low bits (drives set selection); asid in the high
        // bits so different processes never alias.
        return (va >> shift_) | (static_cast<std::uint64_t>(asid) << 40);
    }

    PageSize ps_;
    /** pageShift(ps_), cached so key() is a shift, not a divide. */
    unsigned shift_;
    AssocCache<TlbEntry> cache_;
};

} // namespace ap

#endif // AGILEPAGING_TLB_TLB_HH
