/**
 * @file
 * TLB hierarchy implementation.
 */

#include "tlb/tlb_hierarchy.hh"

namespace ap
{

TlbHierarchy::TlbHierarchy(stats::StatGroup *parent,
                           const TlbHierarchyConfig &cfg)
    : stats::StatGroup("tlb", parent),
      probes(this, "probes", "hierarchy probes"),
      l1Hits(this, "l1_hits", "probes hitting in an L1 TLB"),
      l2Hits(this, "l2_hits", "probes hitting in the L2 TLB"),
      missesStat(this, "misses", "probes missing the whole hierarchy"),
      l1d4k("l1d4k", this, cfg.l1d4k.entries, cfg.l1d4k.ways,
            PageSize::Size4K),
      l1d2m("l1d2m", this, cfg.l1d2m.entries, cfg.l1d2m.ways,
            PageSize::Size2M),
      l1d1g("l1d1g", this, cfg.l1d1g.entries, cfg.l1d1g.ways,
            PageSize::Size1G),
      l1i4k("l1i4k", this, cfg.l1i4k.entries, cfg.l1i4k.ways,
            PageSize::Size4K),
      l1i2m("l1i2m", this, cfg.l1i2m.entries, cfg.l1i2m.ways,
            PageSize::Size2M),
      l2u4k("l2u4k", this, cfg.l2u4k.entries, cfg.l2u4k.ways,
            PageSize::Size4K)
{
}

TlbProbeResult
TlbHierarchy::probe(Addr va, ProcId asid, bool is_instr)
{
    ++probes;
    TlbProbeResult result;

    auto try_l1 = [&](Tlb &tlb) {
        if (auto e = tlb.lookup(va, asid)) {
            result.level = TlbHitLevel::L1;
            result.entry = *e;
            result.size = tlb.pageSize();
            return true;
        }
        return false;
    };

    bool hit = is_instr ? (try_l1(l1i4k) || try_l1(l1i2m))
                        : (try_l1(l1d4k) || try_l1(l1d2m) || try_l1(l1d1g));
    if (hit) {
        ++l1Hits;
        return result;
    }

    // Unified L2 holds only 4K translations (Table III).
    if (auto e = l2u4k.lookup(va, asid)) {
        ++l2Hits;
        result.level = TlbHitLevel::L2;
        result.entry = *e;
        result.size = PageSize::Size4K;
        // Refill the L1 that missed.
        (is_instr ? l1i4k : l1d4k).insert(va, asid, *e);
        return result;
    }

    ++missesStat;
    return result;
}

void
TlbHierarchy::fill(Addr va, ProcId asid, bool is_instr, PageSize ps,
                   const TlbEntry &entry)
{
    switch (ps) {
      case PageSize::Size4K:
        (is_instr ? l1i4k : l1d4k).insert(va, asid, entry);
        l2u4k.insert(va, asid, entry);
        break;
      case PageSize::Size2M:
        (is_instr ? l1i2m : l1d2m).insert(va, asid, entry);
        break;
      case PageSize::Size1G:
        // No 1G ITLB on this machine; 1G code pages fill the DTLB.
        l1d1g.insert(va, asid, entry);
        break;
    }
}

void
TlbHierarchy::flushPage(Addr va, ProcId asid)
{
    l1d4k.flushPage(va, asid);
    l1d2m.flushPage(va, asid);
    l1d1g.flushPage(va, asid);
    l1i4k.flushPage(va, asid);
    l1i2m.flushPage(va, asid);
    l2u4k.flushPage(va, asid);
}

void
TlbHierarchy::flushAsid(ProcId asid)
{
    l1d4k.flushAsid(asid);
    l1d2m.flushAsid(asid);
    l1d1g.flushAsid(asid);
    l1i4k.flushAsid(asid);
    l1i2m.flushAsid(asid);
    l2u4k.flushAsid(asid);
}

void
TlbHierarchy::flushRange(Addr base, Addr len, ProcId asid)
{
    l1d4k.flushRange(base, len, asid);
    l1d2m.flushRange(base, len, asid);
    l1d1g.flushRange(base, len, asid);
    l1i4k.flushRange(base, len, asid);
    l1i2m.flushRange(base, len, asid);
    l2u4k.flushRange(base, len, asid);
}

void
TlbHierarchy::flushAll()
{
    l1d4k.flushAll();
    l1d2m.flushAll();
    l1d1g.flushAll();
    l1i4k.flushAll();
    l1i2m.flushAll();
    l2u4k.flushAll();
}

} // namespace ap
