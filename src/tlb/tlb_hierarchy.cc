/**
 * @file
 * TLB hierarchy implementation.
 */

#include "tlb/tlb_hierarchy.hh"

namespace ap
{

TlbHierarchy::TlbHierarchy(stats::StatGroup *parent,
                           const TlbHierarchyConfig &cfg)
    : stats::StatGroup("tlb", parent),
      probes(this, "probes", "hierarchy probes",
             [this] { return double(probe_count_); }),
      l1Hits(this, "l1_hits", "probes hitting in an L1 TLB",
             [this] { return double(l1_hit_count_); }),
      l2Hits(this, "l2_hits", "probes hitting in the L2 TLB",
             [this] { return double(l2_hit_count_); }),
      missesStat(this, "misses", "probes missing the whole hierarchy",
                 [this] { return double(miss_count_); }),
      l1d4k("l1d4k", this, cfg.l1d4k.entries, cfg.l1d4k.ways,
            PageSize::Size4K),
      l1d2m("l1d2m", this, cfg.l1d2m.entries, cfg.l1d2m.ways,
            PageSize::Size2M),
      l1d1g("l1d1g", this, cfg.l1d1g.entries, cfg.l1d1g.ways,
            PageSize::Size1G),
      l1i4k("l1i4k", this, cfg.l1i4k.entries, cfg.l1i4k.ways,
            PageSize::Size4K),
      l1i2m("l1i2m", this, cfg.l1i2m.entries, cfg.l1i2m.ways,
            PageSize::Size2M),
      l2u4k("l2u4k", this, cfg.l2u4k.entries, cfg.l2u4k.ways,
            PageSize::Size4K)
{
}

void
TlbHierarchy::flushPage(Addr va, ProcId asid)
{
    ++asid_flush_gens_[asidGenSlot(asid)];
    l1d4k.flushPage(va, asid);
    l1d2m.flushPage(va, asid);
    l1d1g.flushPage(va, asid);
    l1i4k.flushPage(va, asid);
    l1i2m.flushPage(va, asid);
    l2u4k.flushPage(va, asid);
}

void
TlbHierarchy::flushAsid(ProcId asid)
{
    ++asid_flush_gens_[asidGenSlot(asid)];
    l1d4k.flushAsid(asid);
    l1d2m.flushAsid(asid);
    l1d1g.flushAsid(asid);
    l1i4k.flushAsid(asid);
    l1i2m.flushAsid(asid);
    l2u4k.flushAsid(asid);
}

void
TlbHierarchy::flushRange(Addr base, Addr len, ProcId asid)
{
    ++asid_flush_gens_[asidGenSlot(asid)];
    l1d4k.flushRange(base, len, asid);
    l1d2m.flushRange(base, len, asid);
    l1d1g.flushRange(base, len, asid);
    l1i4k.flushRange(base, len, asid);
    l1i2m.flushRange(base, len, asid);
    l2u4k.flushRange(base, len, asid);
}

void
TlbHierarchy::flushAll()
{
    ++global_flush_gen_;
    l1d4k.flushAll();
    l1d2m.flushAll();
    l1d1g.flushAll();
    l1i4k.flushAll();
    l1i2m.flushAll();
    l2u4k.flushAll();
}

} // namespace ap
