/**
 * @file
 * TLB hierarchy implementation.
 */

#include "tlb/tlb_hierarchy.hh"

namespace ap
{

TlbHierarchy::TlbHierarchy(stats::StatGroup *parent,
                           const TlbHierarchyConfig &cfg)
    : stats::StatGroup("tlb", parent),
      probes(this, "probes", "hierarchy probes",
             [this] { return double(probe_count_); }),
      l1Hits(this, "l1_hits", "probes hitting in an L1 TLB",
             [this] { return double(l1_hit_count_); }),
      l2Hits(this, "l2_hits", "probes hitting in the L2 TLB",
             [this] { return double(l2_hit_count_); }),
      missesStat(this, "misses", "probes missing the whole hierarchy",
                 [this] { return double(miss_count_); }),
      l1d4k("l1d4k", this, cfg.l1d4k.entries, cfg.l1d4k.ways,
            PageSize::Size4K),
      l1d2m("l1d2m", this, cfg.l1d2m.entries, cfg.l1d2m.ways,
            PageSize::Size2M),
      l1d1g("l1d1g", this, cfg.l1d1g.entries, cfg.l1d1g.ways,
            PageSize::Size1G),
      l1i4k("l1i4k", this, cfg.l1i4k.entries, cfg.l1i4k.ways,
            PageSize::Size4K),
      l1i2m("l1i2m", this, cfg.l1i2m.entries, cfg.l1i2m.ways,
            PageSize::Size2M),
      l2u4k("l2u4k", this, cfg.l2u4k.entries, cfg.l2u4k.ways,
            PageSize::Size4K)
{
}

TlbProbeResult
TlbHierarchy::probe(Addr va, ProcId asid, bool is_instr)
{
    ++probe_count_;
    TlbProbeResult result;

    // L1 fast path: pointer probes of each page-size sub-TLB (hardware
    // probes them in parallel), no entry copies until a hit is known.
    const TlbEntry *e = nullptr;
    const Tlb *src = nullptr;
    if (is_instr) {
        if ((e = l1i4k.find(va, asid)))
            src = &l1i4k;
        else if ((e = l1i2m.find(va, asid)))
            src = &l1i2m;
    } else {
        if ((e = l1d4k.find(va, asid)))
            src = &l1d4k;
        else if ((e = l1d2m.find(va, asid)))
            src = &l1d2m;
        else if ((e = l1d1g.find(va, asid)))
            src = &l1d1g;
    }
    if (e) {
        ++l1_hit_count_;
        result.level = TlbHitLevel::L1;
        result.entry = *e;
        result.size = src->pageSize();
        return result;
    }

    // Unified L2 holds only 4K translations (Table III).
    if (const TlbEntry *e2 = l2u4k.find(va, asid)) {
        ++l2_hit_count_;
        result.level = TlbHitLevel::L2;
        result.entry = *e2;
        result.size = PageSize::Size4K;
        // Refill the L1 that missed.
        (is_instr ? l1i4k : l1d4k).insert(va, asid, result.entry);
        return result;
    }

    ++miss_count_;
    return result;
}

void
TlbHierarchy::fill(Addr va, ProcId asid, bool is_instr, PageSize ps,
                   const TlbEntry &entry)
{
    switch (ps) {
      case PageSize::Size4K:
        (is_instr ? l1i4k : l1d4k).insert(va, asid, entry);
        l2u4k.insert(va, asid, entry);
        break;
      case PageSize::Size2M:
        (is_instr ? l1i2m : l1d2m).insert(va, asid, entry);
        break;
      case PageSize::Size1G:
        // No 1G ITLB on this machine; 1G code pages fill the DTLB.
        l1d1g.insert(va, asid, entry);
        break;
    }
}

void
TlbHierarchy::flushPage(Addr va, ProcId asid)
{
    ++flush_gen_;
    l1d4k.flushPage(va, asid);
    l1d2m.flushPage(va, asid);
    l1d1g.flushPage(va, asid);
    l1i4k.flushPage(va, asid);
    l1i2m.flushPage(va, asid);
    l2u4k.flushPage(va, asid);
}

void
TlbHierarchy::flushAsid(ProcId asid)
{
    ++flush_gen_;
    l1d4k.flushAsid(asid);
    l1d2m.flushAsid(asid);
    l1d1g.flushAsid(asid);
    l1i4k.flushAsid(asid);
    l1i2m.flushAsid(asid);
    l2u4k.flushAsid(asid);
}

void
TlbHierarchy::flushRange(Addr base, Addr len, ProcId asid)
{
    ++flush_gen_;
    l1d4k.flushRange(base, len, asid);
    l1d2m.flushRange(base, len, asid);
    l1d1g.flushRange(base, len, asid);
    l1i4k.flushRange(base, len, asid);
    l1i2m.flushRange(base, len, asid);
    l2u4k.flushRange(base, len, asid);
}

void
TlbHierarchy::flushAll()
{
    ++flush_gen_;
    l1d4k.flushAll();
    l1d2m.flushAll();
    l1d1g.flushAll();
    l1i4k.flushAll();
    l1i2m.flushAll();
    l2u4k.flushAll();
}

} // namespace ap
