/**
 * @file
 * Page walk cache implementation.
 */

#include "tlb/pwc.hh"

#include "base/bitfield.hh"

namespace ap
{

PageWalkCache::PageWalkCache(stats::StatGroup *parent, std::size_t entries,
                             std::size_t ways, bool enabled)
    : stats::StatGroup("pwc", parent),
      hitsSkip1(this, "hits_skip1", "walks resumed at depth 1"),
      hitsSkip2(this, "hits_skip2", "walks resumed at depth 2"),
      hitsSkip3(this, "hits_skip3", "walks resumed at depth 3"),
      missesStat(this, "misses", "probes with no usable skip"),
      enabled_(enabled)
{
    for (unsigned d = 0; d < kPtLevels - 1; ++d)
        tables_.emplace_back(entries, ways);
}

std::uint64_t
PageWalkCache::key(Addr va, ProcId asid, unsigned depth) const
{
    // The prefix consumed by depths 0..depth-1: the top depth*9 bits of
    // the 48-bit VA.
    unsigned shift = kPageShift + (kPtLevels - depth) * kLevelBits;
    return (va >> shift) | (static_cast<std::uint64_t>(asid) << 40);
}

PwcHit
PageWalkCache::probe(Addr va, ProcId asid)
{
    PwcHit hit;
    if (!enabled_) {
        return hit;
    }
    for (unsigned depth = kPtLevels - 1; depth >= 1; --depth) {
        if (PwcEntry *e = tables_[depth - 1].lookup(key(va, asid, depth))) {
            hit.startDepth = depth;
            hit.entry = *e;
            switch (depth) {
              case 1:
                ++hitsSkip1;
                break;
              case 2:
                ++hitsSkip2;
                break;
              default:
                ++hitsSkip3;
                break;
            }
            return hit;
        }
    }
    ++missesStat;
    return hit;
}

void
PageWalkCache::fill(Addr va, ProcId asid, unsigned depth, FrameId frame,
                    bool nested)
{
    if (!enabled_ || depth == 0 || depth >= kPtLevels)
        return;
    tables_[depth - 1].insert(key(va, asid, depth),
                              PwcEntry{frame, nested});
}

void
PageWalkCache::flushAsid(ProcId asid)
{
    for (auto &t : tables_) {
        t.eraseIf([asid](std::uint64_t k, const PwcEntry &) {
            return (k >> 40) == asid;
        });
    }
}

void
PageWalkCache::flushRange(Addr base, Addr len, ProcId asid)
{
    // Same guard as Tlb::flushRange: base + len - 1 must not wrap.
    if (len == 0)
        return;
    for (unsigned depth = 1; depth < kPtLevels; ++depth) {
        unsigned shift = kPageShift + (kPtLevels - depth) * kLevelBits;
        std::uint64_t lo = base >> shift;
        std::uint64_t hi = (base + len - 1) >> shift;
        tables_[depth - 1].eraseIf(
            [=](std::uint64_t k, const PwcEntry &) {
                std::uint64_t prefix = k & ((std::uint64_t{1} << 40) - 1);
                return (k >> 40) == asid && prefix >= lo && prefix <= hi;
            });
    }
}

void
PageWalkCache::flushAll()
{
    for (auto &t : tables_)
        t.clear();
}

} // namespace ap
