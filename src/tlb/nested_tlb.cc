/**
 * @file
 * Nested TLB implementation.
 */

#include "tlb/nested_tlb.hh"

namespace ap
{

NestedTlb::NestedTlb(stats::StatGroup *parent, std::size_t entries,
                     std::size_t ways, bool enabled)
    : stats::StatGroup("ntlb", parent),
      hits(this, "hits", "second-stage translations served"),
      misses(this, "misses", "second-stage probes that missed"),
      enabled_(enabled),
      cache_(entries, ways)
{
}

std::optional<NtlbEntry>
NestedTlb::lookup(FrameId gframe)
{
    if (!enabled_)
        return std::nullopt;
    if (NtlbEntry *e = cache_.lookup(gframe)) {
        ++hits;
        return *e;
    }
    ++misses;
    return std::nullopt;
}

void
NestedTlb::insert(FrameId gframe, const NtlbEntry &entry)
{
    if (!enabled_)
        return;
    cache_.insert(gframe, entry);
}

void
NestedTlb::flushFrame(FrameId gframe)
{
    cache_.erase(gframe);
}

void
NestedTlb::flushAll()
{
    cache_.clear();
}

} // namespace ap
