/**
 * @file
 * Nested TLB: caches second-stage (gPA to hPA) translations so that
 * repeated host walks inside a nested page walk are skipped (Bhargava
 * et al. [19]; Intel's "EPT TLB"). Per-VM, not per-process.
 */

#ifndef AGILEPAGING_TLB_NESTED_TLB_HH
#define AGILEPAGING_TLB_NESTED_TLB_HH

#include <optional>

#include "base/serialize.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "tlb/assoc_cache.hh"

namespace ap
{

/** Cached second-stage leaf translation for one guest 4 KB frame. */
struct NtlbEntry
{
    /** Host 4 KB frame backing the guest frame. */
    FrameId hframe = 0;
    /** Granule of the host mapping the translation came from. */
    PageSize hostSize = PageSize::Size4K;
    /** Host-stage write permission. */
    bool writable = false;
};

/**
 * gPA-frame to hPA-frame cache.
 */
class NestedTlb : public stats::StatGroup
{
  public:
    /**
     * @param parent stat parent
     * @param entries capacity; @param ways associativity
     * @param enabled when false every probe misses
     */
    NestedTlb(stats::StatGroup *parent, std::size_t entries,
              std::size_t ways, bool enabled);

    /** @return cached translation of @p gframe if present. */
    std::optional<NtlbEntry> lookup(FrameId gframe);

    /** Record a completed second-stage translation. */
    void insert(FrameId gframe, const NtlbEntry &entry);

    /** Invalidate one guest frame (host PT change). */
    void flushFrame(FrameId gframe);

    /** Invalidate everything (host PT rewrite, VM switch). */
    void flushAll();

    bool enabled() const { return enabled_; }

    /** Snapshot support. */
    void saveState(Serializer &s) const { cache_.saveState(s); }
    void restoreState(Deserializer &d) { cache_.restoreState(d); }

    stats::Scalar hits;
    stats::Scalar misses;

  private:
    bool enabled_;
    AssocCache<NtlbEntry> cache_;
};

} // namespace ap

#endif // AGILEPAGING_TLB_NESTED_TLB_HH
