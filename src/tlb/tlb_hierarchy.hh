/**
 * @file
 * The per-core TLB hierarchy of the paper's Table III (Sandy Bridge
 * Xeon E5-2430):
 *
 *   L1 DTLB: 4K 64e/4w, 2M 32e/4w, 1G 4e/full
 *   L1 ITLB: 4K 128e/4w, 2M 8e/full
 *   L2 TLB (unified): 4K 512e/4w (no 2M entries)
 *
 * A probe checks the appropriate L1 (D or I) then the L2. A fill
 * installs into both the L1 and (for 4K translations) the L2; an L2 hit
 * also refills the L1.
 */

#ifndef AGILEPAGING_TLB_TLB_HIERARCHY_HH
#define AGILEPAGING_TLB_TLB_HIERARCHY_HH

#include <memory>
#include <optional>

#include "base/logging.hh"
#include "base/serialize.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "tlb/tlb.hh"

namespace ap
{

/** Geometry knobs for one TLB structure. */
struct TlbGeometry
{
    std::size_t entries;
    std::size_t ways;
};

/** Configuration of the whole hierarchy (defaults = Table III). */
struct TlbHierarchyConfig
{
    TlbGeometry l1d4k{64, 4};
    TlbGeometry l1d2m{32, 4};
    TlbGeometry l1d1g{4, 4};
    TlbGeometry l1i4k{128, 4};
    TlbGeometry l1i2m{8, 8};
    TlbGeometry l2u4k{512, 4};
};

/** Where a hit was found (for latency attribution). */
enum class TlbHitLevel
{
    L1,
    L2,
    Miss,
};

/** Result of a hierarchy probe. */
struct TlbProbeResult
{
    TlbHitLevel level = TlbHitLevel::Miss;
    TlbEntry entry{};
    PageSize size = PageSize::Size4K;
};

/**
 * The full per-core hierarchy.
 */
class TlbHierarchy : public stats::StatGroup
{
  public:
    TlbHierarchy(stats::StatGroup *parent, const TlbHierarchyConfig &cfg);

    /** Indexes into RefillPending's per-structure arrays, in the
     *  member declaration order below. */
    enum TlbIndex : unsigned
    {
        kD4K = 0,
        kD2M,
        kD1G,
        kI4K,
        kI2M,
        kU4K,
        kNumTlbs
    };

    /**
     * Deferred probe accounting: probeDeferred() accumulates every
     * stat charge a probe() would make — per-structure hit/miss/
     * eviction Scalars and the aggregate probe counters, including the
     * L2-hit → L1-promote bookkeeping — into one of these instead of
     * touching the stats, and applyRefillPending() flushes the whole
     * batch with bulk adds. Totals are bit-identical (the counters are
     * integral and far below 2^53, so a double += n equals n
     * increments exactly); only *when* the counters move changes, and
     * nothing reads them between block boundaries.
     */
    struct RefillPending
    {
        std::uint64_t probes = 0;
        std::uint64_t l1Hits = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t hits[kNumTlbs] = {};
        std::uint64_t tlbMisses[kNumTlbs] = {};
        std::uint64_t evictions[kNumTlbs] = {};

        bool empty() const { return probes == 0; }
    };

    /**
     * Probe for a data or instruction translation.
     * Checks every page-size sub-TLB (hardware probes them in
     * parallel); an L2 hit is promoted into the appropriate L1.
     */
    TlbProbeResult
    probe(Addr va, ProcId asid, bool is_instr)
    {
        ++probe_count_;
        TlbProbeResult result;

        // L1 fast path: pointer probes of each page-size sub-TLB
        // (hardware probes them in parallel), no entry copies until a
        // hit is known.
        const TlbEntry *e = nullptr;
        const Tlb *src = nullptr;
        if (is_instr) {
            if ((e = l1i4k.find(va, asid)))
                src = &l1i4k;
            else if ((e = l1i2m.find(va, asid)))
                src = &l1i2m;
        } else {
            if ((e = l1d4k.find(va, asid)))
                src = &l1d4k;
            else if ((e = l1d2m.find(va, asid)))
                src = &l1d2m;
            else if ((e = l1d1g.find(va, asid)))
                src = &l1d1g;
        }
        if (e) {
            ++l1_hit_count_;
            result.level = TlbHitLevel::L1;
            result.entry = *e;
            result.size = src->pageSize();
            return result;
        }

        // Unified L2 holds only 4K translations (Table III).
        if (const TlbEntry *e2 = l2u4k.find(va, asid)) {
            ++l2_hit_count_;
            result.level = TlbHitLevel::L2;
            result.entry = *e2;
            result.size = PageSize::Size4K;
            // Refill the L1 that missed.
            (is_instr ? l1i4k : l1d4k).insert(va, asid, result.entry);
            return result;
        }

        ++miss_count_;
        return result;
    }

    /**
     * probe() with every stat charge deferred into @p p (see
     * RefillPending). Functional state — LRU order, the L2-hit L1
     * promote install — moves exactly as probe() moves it; only the
     * counter bumps are batched. The caller must eventually flush
     * @p p via applyRefillPending() on this same hierarchy.
     */
    TlbProbeResult
    probeDeferred(Addr va, ProcId asid, bool is_instr, RefillPending &p)
    {
        ++p.probes;
        TlbProbeResult result;

        const TlbEntry *e = nullptr;
        const Tlb *src = nullptr;
        unsigned si = kNumTlbs;
        if (is_instr) {
            if ((e = l1i4k.findQuiet(va, asid))) {
                src = &l1i4k;
                si = kI4K;
            } else {
                ++p.tlbMisses[kI4K];
                if ((e = l1i2m.findQuiet(va, asid))) {
                    src = &l1i2m;
                    si = kI2M;
                } else {
                    ++p.tlbMisses[kI2M];
                }
            }
        } else {
            if ((e = l1d4k.findQuiet(va, asid))) {
                src = &l1d4k;
                si = kD4K;
            } else {
                ++p.tlbMisses[kD4K];
                if ((e = l1d2m.findQuiet(va, asid))) {
                    src = &l1d2m;
                    si = kD2M;
                } else {
                    ++p.tlbMisses[kD2M];
                    if ((e = l1d1g.findQuiet(va, asid))) {
                        src = &l1d1g;
                        si = kD1G;
                    } else {
                        ++p.tlbMisses[kD1G];
                    }
                }
            }
        }
        if (e) {
            ++p.hits[si];
            ++p.l1Hits;
            result.level = TlbHitLevel::L1;
            result.entry = *e;
            result.size = src->pageSize();
            return result;
        }

        if (const TlbEntry *e2 = l2u4k.findQuiet(va, asid)) {
            ++p.hits[kU4K];
            ++p.l2Hits;
            result.level = TlbHitLevel::L2;
            result.entry = *e2;
            result.size = PageSize::Size4K;
            const unsigned li = is_instr ? kI4K : kD4K;
            if ((is_instr ? l1i4k : l1d4k)
                    .insertQuiet(va, asid, result.entry))
                ++p.evictions[li];
            return result;
        }

        ++p.tlbMisses[kU4K];
        ++p.misses;
        return result;
    }

    /**
     * Flush a RefillPending accumulated by probeDeferred() into the
     * real counters with one bulk add per touched stat. Debug builds
     * assert the batch is internally consistent — every deferred
     * probe resolved to exactly one of {L1 hit, L2 hit, miss}, and
     * the per-structure hit charges sum to the aggregate hits — i.e.
     * the bulk accounting agrees with what per-access probe() calls
     * would have produced. Clears @p p.
     */
    void
    applyRefillPending(RefillPending &p)
    {
        if (p.empty())
            return;
#ifndef NDEBUG
        ap_assert(p.l1Hits + p.l2Hits + p.misses == p.probes,
                  "deferred refill accounting: ", p.l1Hits, " L1 + ",
                  p.l2Hits, " L2 + ", p.misses,
                  " misses != ", p.probes, " probes");
        std::uint64_t hit_sum = 0;
        for (unsigned t = 0; t < kNumTlbs; ++t)
            hit_sum += p.hits[t];
        ap_assert(hit_sum == p.l1Hits + p.l2Hits,
                  "deferred refill accounting: per-structure hits ",
                  hit_sum, " != aggregate ", p.l1Hits + p.l2Hits);
#endif
        probe_count_ += p.probes;
        l1_hit_count_ += p.l1Hits;
        l2_hit_count_ += p.l2Hits;
        miss_count_ += p.misses;
        Tlb *tlbs[kNumTlbs] = {&l1d4k, &l1d2m, &l1d1g,
                               &l1i4k, &l1i2m, &l2u4k};
        for (unsigned t = 0; t < kNumTlbs; ++t) {
            if (p.hits[t])
                tlbs[t]->hits += double(p.hits[t]);
            if (p.tlbMisses[t])
                tlbs[t]->misses += double(p.tlbMisses[t]);
            if (p.evictions[t])
                tlbs[t]->evictions += double(p.evictions[t]);
        }
        p = RefillPending{};
    }

    /** Install a completed translation of granule @p ps. */
    void
    fill(Addr va, ProcId asid, bool is_instr, PageSize ps,
         const TlbEntry &entry)
    {
        switch (ps) {
          case PageSize::Size4K:
            (is_instr ? l1i4k : l1d4k).insert(va, asid, entry);
            l2u4k.insert(va, asid, entry);
            break;
          case PageSize::Size2M:
            (is_instr ? l1i2m : l1d2m).insert(va, asid, entry);
            break;
          case PageSize::Size1G:
            // No 1G ITLB on this machine; 1G code pages fill the DTLB.
            l1d1g.insert(va, asid, entry);
            break;
        }
    }

    /** Invalidate one page everywhere. */
    void flushPage(Addr va, ProcId asid);

    /** Invalidate an address-space id everywhere (guest CR3 write /
     *  full guest TLB flush). */
    void flushAsid(ProcId asid);

    /** Invalidate a VA range for @p asid everywhere. */
    void flushRange(Addr base, Addr len, ProcId asid);

    /** Invalidate everything (host-side invalidation). */
    void flushAll();

    /**
     * Monotonic invalidation count as seen by @p asid. The machine's
     * last-translation filter caches the previous probe's result and
     * must revalidate it whenever anything that could affect this
     * address space may have been flushed; comparing this counter is
     * that check.
     *
     * Scoped flushes (flushPage/flushAsid/flushRange) bump only the
     * target ASID's generation slot, so one process's flush no longer
     * invalidates every other process's filter; flushAll() bumps the
     * global generation all ASIDs observe. The per-ASID slots are a
     * small direct-mapped array, so two ASIDs that collide modulo
     * kAsidGenSlots conservatively invalidate each other — never the
     * reverse.
     */
    std::uint64_t
    flushGeneration(ProcId asid) const
    {
        return global_flush_gen_ + asid_flush_gens_[asidGenSlot(asid)];
    }

    /**
     * Account a probe that an external last-translation filter proved
     * would hit the same L1 entry as the immediately preceding probe of
     * this stream (same page, no flush in between): bumps exactly the
     * counters probe() would bump for an L1 hit of size @p ps, without
     * re-touching the arrays. Re-stamping the entry's LRU state is
     * skipped deliberately — the entry is already the most recently
     * used way of its set, so the set's relative order is unchanged.
     */
    void
    countFilteredL1Hit(PageSize ps, bool is_instr)
    {
        ++probe_count_;
        ++l1_hit_count_;
        // Mirror the per-structure hit/miss charges of probe()'s
        // probe order for the structure the entry demonstrably
        // lives in.
        if (is_instr) {
            if (ps == PageSize::Size4K) {
                ++l1i4k.hits;
            } else {
                ++l1i4k.misses;
                ++l1i2m.hits;
            }
            return;
        }
        switch (ps) {
          case PageSize::Size4K:
            ++l1d4k.hits;
            break;
          case PageSize::Size2M:
            ++l1d4k.misses;
            ++l1d2m.hits;
            break;
          case PageSize::Size1G:
            ++l1d4k.misses;
            ++l1d2m.misses;
            ++l1d1g.hits;
            break;
        }
    }

    /**
     * Bulk form: account @p n consecutive filtered L1 hits of the
     * same stream and size with one add per touched counter. The
     * counters are integral and far below 2^53, so each double += n
     * lands exactly where n single increments would; debug builds
     * take the per-access path n times instead and assert the totals
     * agree with the closed form.
     */
    void
    countFilteredL1Hit(PageSize ps, bool is_instr, std::uint64_t n)
    {
        if (n == 0)
            return;
#ifndef NDEBUG
        const std::uint64_t probes0 = probe_count_;
        const std::uint64_t l1_hits0 = l1_hit_count_;
        for (std::uint64_t k = 0; k < n; ++k)
            countFilteredL1Hit(ps, is_instr);
        ap_assert(probe_count_ == probes0 + n &&
                      l1_hit_count_ == l1_hits0 + n,
                  "bulk filtered-hit accounting diverged from the "
                  "per-access path at n=", n);
#else
        probe_count_ += n;
        l1_hit_count_ += n;
        const double d = double(n);
        if (is_instr) {
            if (ps == PageSize::Size4K) {
                l1i4k.hits += d;
            } else {
                l1i4k.misses += d;
                l1i2m.hits += d;
            }
            return;
        }
        switch (ps) {
          case PageSize::Size4K:
            l1d4k.hits += d;
            break;
          case PageSize::Size2M:
            l1d4k.misses += d;
            l1d2m.hits += d;
            break;
          case PageSize::Size1G:
            l1d4k.misses += d;
            l1d2m.misses += d;
            l1d1g.hits += d;
            break;
        }
#endif
    }

    /** Aggregate probe counters. The hot path bumps plain integers;
     *  the formulas expose them to stat dumps lazily. */
    stats::Formula probes;
    stats::Formula l1Hits;
    stats::Formula l2Hits;
    stats::Formula missesStat;

    Tlb l1d4k, l1d2m, l1d1g;
    Tlb l1i4k, l1i2m;
    Tlb l2u4k;

    /** Visit every live entry of every structure as
     *  @p fn(va, asid, entry, granule) (invariant sweeps). */
    template <typename Fn>
    void
    forEachEntry(const Fn &fn) const
    {
        for (const Tlb *t :
             {&l1d4k, &l1d2m, &l1d1g, &l1i4k, &l1i2m, &l2u4k}) {
            t->forEach([&](Addr va, ProcId asid, const TlbEntry &e) {
                fn(va, asid, e, t->pageSize());
            });
        }
    }

    /** Snapshot support: every cache plus the aggregate counters the
     *  Formula stats read. */
    void
    saveState(Serializer &s) const
    {
        for (const Tlb *t : {&l1d4k, &l1d2m, &l1d1g, &l1i4k, &l1i2m,
                             &l2u4k})
            t->saveState(s);
        s.putU64(probe_count_);
        s.putU64(l1_hit_count_);
        s.putU64(l2_hit_count_);
        s.putU64(miss_count_);
        s.putU64(global_flush_gen_);
        for (std::uint64_t g : asid_flush_gens_)
            s.putU64(g);
    }

    void
    restoreState(Deserializer &d)
    {
        for (Tlb *t : {&l1d4k, &l1d2m, &l1d1g, &l1i4k, &l1i2m, &l2u4k})
            t->restoreState(d);
        probe_count_ = d.getU64();
        l1_hit_count_ = d.getU64();
        l2_hit_count_ = d.getU64();
        miss_count_ = d.getU64();
        global_flush_gen_ = d.getU64();
        for (std::uint64_t &g : asid_flush_gens_)
            g = d.getU64();
    }

    /** Direct-mapped per-ASID flush-generation slots. */
    static constexpr std::size_t kAsidGenSlots = 64;

    static std::size_t
    asidGenSlot(ProcId asid)
    {
        return static_cast<std::size_t>(asid) & (kAsidGenSlots - 1);
    }

  private:
    std::uint64_t probe_count_ = 0;
    std::uint64_t l1_hit_count_ = 0;
    std::uint64_t l2_hit_count_ = 0;
    std::uint64_t miss_count_ = 0;
    /** Bumped by flushAll(): every address space observes it. */
    std::uint64_t global_flush_gen_ = 1;
    /** Bumped by ASID-scoped flushes; observed generation is the sum
     *  of the global counter and the ASID's slot, so both kinds of
     *  flush strictly advance what flushGeneration(asid) returns. */
    std::uint64_t asid_flush_gens_[kAsidGenSlots] = {};
};

} // namespace ap

#endif // AGILEPAGING_TLB_TLB_HIERARCHY_HH
