/**
 * @file
 * Generic set-associative cache with true-LRU replacement.
 *
 * Shared machinery for the TLBs, page-walk caches, nested TLB, and the
 * sptr hardware cache. Keys are 64-bit; the set index is the low bits
 * of the key, the tag is the remainder.
 */

#ifndef AGILEPAGING_TLB_ASSOC_CACHE_HH
#define AGILEPAGING_TLB_ASSOC_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/logging.hh"

namespace ap
{

/**
 * @tparam V payload stored per entry.
 */
template <typename V>
class AssocCache
{
  public:
    /**
     * @param entries total entry count (> 0)
     * @param ways    associativity; entries must divide evenly into
     *                sets. ways == entries gives a fully-associative
     *                cache.
     */
    AssocCache(std::size_t entries, std::size_t ways)
        : ways_(ways), sets_(entries / ways), entries_(entries)
    {
        ap_assert(entries > 0 && ways > 0, "bad cache geometry");
        ap_assert(entries % ways == 0, "entries not divisible by ways");
        lines_.resize(entries);
    }

    /**
     * Look up @p key; refreshes LRU on hit.
     * @return pointer to the payload, or nullptr on miss.
     */
    V *
    lookup(std::uint64_t key)
    {
        Line *line = find(key);
        if (!line)
            return nullptr;
        line->lastUse = ++use_clock_;
        return &line->value;
    }

    /** Look up without disturbing LRU state (for inspection). */
    const V *
    peek(std::uint64_t key) const
    {
        const Line *line = const_cast<AssocCache *>(this)->find(key);
        return line ? &line->value : nullptr;
    }

    /**
     * Insert (or overwrite) @p key, evicting the set's LRU victim if
     * the set is full.
     * @return true if a valid entry was evicted.
     */
    bool
    insert(std::uint64_t key, V value)
    {
        std::size_t set = key % sets_;
        Line *victim = nullptr;
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &line = lines_[set * ways_ + w];
            if (line.valid && line.key == key) {
                line.value = std::move(value);
                line.lastUse = ++use_clock_;
                return false;
            }
            if (!victim || !line.valid ||
                (victim->valid && line.lastUse < victim->lastUse)) {
                if (!victim || victim->valid)
                    victim = &line;
            }
        }
        bool evicted = victim->valid;
        victim->valid = true;
        victim->key = key;
        victim->value = std::move(value);
        victim->lastUse = ++use_clock_;
        return evicted;
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(std::uint64_t key)
    {
        Line *line = find(key);
        if (!line)
            return false;
        line->valid = false;
        return true;
    }

    /** Remove every entry matching @p pred(key, value). */
    void
    eraseIf(const std::function<bool(std::uint64_t, const V &)> &pred)
    {
        for (Line &line : lines_) {
            if (line.valid && pred(line.key, line.value))
                line.valid = false;
        }
    }

    /** Drop everything. */
    void
    clear()
    {
        for (Line &line : lines_)
            line.valid = false;
    }

    /** Number of valid entries. */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const Line &line : lines_)
            n += line.valid;
        return n;
    }

    std::size_t capacity() const { return entries_; }
    std::size_t ways() const { return ways_; }

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t key = 0;
        std::uint64_t lastUse = 0;
        V value{};
    };

    Line *
    find(std::uint64_t key)
    {
        std::size_t set = key % sets_;
        for (std::size_t w = 0; w < ways_; ++w) {
            Line &line = lines_[set * ways_ + w];
            if (line.valid && line.key == key)
                return &line;
        }
        return nullptr;
    }

    std::size_t ways_;
    std::size_t sets_;
    std::size_t entries_;
    std::uint64_t use_clock_ = 0;
    std::vector<Line> lines_;
};

} // namespace ap

#endif // AGILEPAGING_TLB_ASSOC_CACHE_HH
