/**
 * @file
 * Generic set-associative cache with true-LRU replacement.
 *
 * Shared machinery for the TLBs, page-walk caches, nested TLB, and the
 * sptr hardware cache. Keys are 64-bit; the set index is the low bits
 * of the key, the tag is the remainder.
 *
 * This is the inner loop of every simulated memory access, so the
 * layout is tuned for the probe path: tags, generations, and LRU
 * stamps live in flat arrays (no per-line struct hop), a set's ways
 * are scanned as one contiguous open-addressed run, and bulk
 * invalidation bumps a generation counter instead of clearing lines —
 * a line is live only when its stored generation matches the cache's.
 */

#ifndef AGILEPAGING_TLB_ASSOC_CACHE_HH
#define AGILEPAGING_TLB_ASSOC_CACHE_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "base/logging.hh"
#include "base/serialize.hh"

namespace ap
{

/**
 * @tparam V payload stored per entry.
 */
template <typename V>
class AssocCache
{
  public:
    /**
     * @param entries total entry count (> 0)
     * @param ways    associativity; entries must divide evenly into
     *                sets. ways == entries gives a fully-associative
     *                cache.
     */
    AssocCache(std::size_t entries, std::size_t ways)
        : ways_(ways), sets_(entries / ways), entries_(entries)
    {
        ap_assert(entries > 0 && ways > 0, "bad cache geometry");
        ap_assert(entries % ways == 0, "entries not divisible by ways");
        // Every real TLB/PWC geometry has a power-of-two set count, so
        // the probe path indexes with a mask instead of a division; a
        // non-power-of-two geometry (tests, exotic configs) falls back
        // to the modulo path.
        if ((sets_ & (sets_ - 1)) == 0)
            set_mask_ = sets_ - 1;
        keys_.resize(entries, 0);
        gens_.resize(entries, 0); // generation 0 < gen_ = never live
        last_use_.resize(entries, 0);
        values_.resize(entries);
    }

    /**
     * Look up @p key; refreshes LRU on hit.
     * @return pointer to the payload, or nullptr on miss.
     */
    V *
    lookup(std::uint64_t key)
    {
        std::size_t i = findIndex(key);
        if (i == kNotFound)
            return nullptr;
        last_use_[i] = ++use_clock_;
        return &values_[i];
    }

    /** Look up without disturbing LRU state (for inspection). */
    const V *
    peek(std::uint64_t key) const
    {
        std::size_t i = findIndex(key);
        return i == kNotFound ? nullptr : &values_[i];
    }

    /**
     * Insert (or overwrite) @p key, evicting the set's LRU victim if
     * the set is full.
     * @return true if a valid entry was evicted.
     */
    bool
    insert(std::uint64_t key, V value)
    {
        std::size_t base = setBase(key);
        std::size_t victim = base;
        bool victim_live = false;
        bool first = true;
        for (std::size_t i = base; i < base + ways_; ++i) {
            bool live = gens_[i] == gen_;
            if (live && keys_[i] == key) {
                values_[i] = std::move(value);
                last_use_[i] = ++use_clock_;
                return false;
            }
            // Victim choice (matches true LRU): the first dead way,
            // else the live way with the oldest use stamp.
            if (first) {
                victim = i;
                victim_live = live;
                first = false;
            } else if (victim_live &&
                       (!live || last_use_[i] < last_use_[victim])) {
                victim = i;
                victim_live = live;
            }
        }
        keys_[victim] = key;
        gens_[victim] = gen_;
        values_[victim] = std::move(value);
        last_use_[victim] = ++use_clock_;
        return victim_live;
    }

    /** Remove @p key. @return true if it was present. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t i = findIndex(key);
        if (i == kNotFound)
            return false;
        gens_[i] = 0;
        return true;
    }

    /** Remove every entry matching @p pred(key, value). */
    template <typename Pred>
    void
    eraseIf(const Pred &pred)
    {
        for (std::size_t i = 0; i < entries_; ++i) {
            if (gens_[i] == gen_ && pred(keys_[i], values_[i]))
                gens_[i] = 0;
        }
    }

    /** Drop everything: O(1) generation bump, no line is touched. */
    void
    clear()
    {
        ++gen_;
    }

    /** Visit every live entry as @p fn(key, value) without disturbing
     *  LRU state (invariant sweeps, debugging). */
    template <typename Fn>
    void
    forEach(const Fn &fn) const
    {
        for (std::size_t i = 0; i < entries_; ++i) {
            if (gens_[i] == gen_)
                fn(keys_[i], values_[i]);
        }
    }

    /** Number of valid entries. */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (std::size_t i = 0; i < entries_; ++i)
            n += gens_[i] == gen_;
        return n;
    }

    std::size_t capacity() const { return entries_; }
    std::size_t ways() const { return ways_; }

    /**
     * Snapshot support. Dead lines are serialized along with live ones
     * — their contents are unobservable through the probe path, but
     * copying them raw keeps future replacement decisions (which read
     * last_use_ of dead ways' successors) byte-for-byte identical.
     */
    void
    saveState(Serializer &s) const
    {
        static_assert(std::is_trivially_copyable_v<V>,
                      "AssocCache payload must be trivially copyable "
                      "to snapshot");
        s.putU64(entries_);
        s.putU64(ways_);
        s.putU64(use_clock_);
        s.putU64(gen_);
        s.putPodVector(keys_);
        s.putPodVector(gens_);
        s.putPodVector(last_use_);
        s.putPodVector(values_);
    }

    void
    restoreState(Deserializer &d)
    {
        if (d.getU64() != entries_ || d.getU64() != ways_) {
            d.fail();
            return;
        }
        use_clock_ = d.getU64();
        gen_ = d.getU64();
        d.getPodVector(keys_);
        d.getPodVector(gens_);
        d.getPodVector(last_use_);
        d.getPodVector(values_);
        if (keys_.size() != entries_ || gens_.size() != entries_ ||
            last_use_.size() != entries_ || values_.size() != entries_) {
            d.fail();
        }
    }

  private:
    static constexpr std::size_t kNotFound = ~std::size_t{0};

    /** First index of the set @p key maps to. */
    std::size_t
    setBase(std::uint64_t key) const
    {
        std::size_t set = set_mask_ != kNoMask ? (key & set_mask_)
                                               : (key % sets_);
        return set * ways_;
    }

    /**
     * Branch-free scan of one set: every way's tag and generation are
     * compared unconditionally and the hit (unique — insert never
     * duplicates a key) is selected arithmetically, so the compare loop
     * has no data-dependent branches and vectorizes.
     */
    std::size_t
    findIndex(std::uint64_t key) const
    {
        const std::size_t base = setBase(key);
        const std::uint64_t *keys = keys_.data() + base;
        const std::uint64_t *gens = gens_.data() + base;
        const std::uint64_t gen = gen_;
        std::size_t hit = 0;
        for (std::size_t w = 0; w < ways_; ++w) {
            std::size_t match = (keys[w] == key) & (gens[w] == gen);
            hit |= match * (base + w + 1);
        }
        return hit == 0 ? kNotFound : hit - 1;
    }

    std::size_t ways_;
    std::size_t sets_;
    std::size_t entries_;
    static constexpr std::size_t kNoMask = ~std::size_t{0};
    /** sets_ - 1 when sets_ is a power of two, else kNoMask. */
    std::size_t set_mask_ = kNoMask;
    std::uint64_t use_clock_ = 0;
    /** Current generation; lines written under an older one are dead. */
    std::uint64_t gen_ = 1;
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> gens_;
    std::vector<std::uint64_t> last_use_;
    std::vector<V> values_;
};

} // namespace ap

#endif // AGILEPAGING_TLB_ASSOC_CACHE_HH
