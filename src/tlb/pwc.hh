/**
 * @file
 * Page walk caches (MMU caches), Intel-style, extended for agile paging.
 *
 * Three structures cache partial translations that let a walk skip the
 * top one, two, or three levels (paper Section III-A). Each entry holds
 * the host frame of the table page the walk resumes from plus a single
 * mode bit saying whether that frame is a shadow-table page (resume in
 * shadow mode) or a guest-table page (resume in nested mode) — the
 * agile extension.
 */

#ifndef AGILEPAGING_TLB_PWC_HH
#define AGILEPAGING_TLB_PWC_HH

#include <memory>
#include <vector>

#include "base/serialize.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "tlb/assoc_cache.hh"

namespace ap
{

/** Where a PWC-resumed walk continues. */
struct PwcEntry
{
    /** Host frame of the table page to read next. */
    FrameId frame = 0;
    /** Resume in nested mode (frame is a guest-PT page). */
    bool nested = false;
};

/** Result of a PWC probe. */
struct PwcHit
{
    /** Walk depth to resume at (0 = no hit, start at the root). */
    unsigned startDepth = 0;
    PwcEntry entry{};
};

/**
 * The three-table page-walk-cache complex.
 */
class PageWalkCache : public stats::StatGroup
{
  public:
    /**
     * @param parent   stat parent
     * @param entries  entries per skip table
     * @param ways     associativity per skip table
     * @param enabled  a disabled PWC never hits (Table VI runs)
     */
    PageWalkCache(stats::StatGroup *parent, std::size_t entries,
                  std::size_t ways, bool enabled);

    /**
     * Probe for the deepest usable skip for (va, asid).
     * Tries skip-3, then skip-2, then skip-1.
     */
    PwcHit probe(Addr va, ProcId asid);

    /**
     * Record that the table page read at @p depth for @p va lives in
     * @p frame with the given mode. Depth 0 (the root) is not cached —
     * the root pointer register already provides it.
     */
    void fill(Addr va, ProcId asid, unsigned depth, FrameId frame,
              bool nested);

    /** Invalidate all partial translations of an address space. */
    void flushAsid(ProcId asid);

    /** Invalidate entries covering [base, base+len) for @p asid. */
    void flushRange(Addr base, Addr len, ProcId asid);

    /** Invalidate everything. */
    void flushAll();

    bool enabled() const { return enabled_; }

    /** Snapshot support. */
    void
    saveState(Serializer &s) const
    {
        for (const auto &t : tables_)
            t.saveState(s);
    }

    void
    restoreState(Deserializer &d)
    {
        for (auto &t : tables_)
            t.restoreState(d);
    }

    stats::Scalar hitsSkip1;
    stats::Scalar hitsSkip2;
    stats::Scalar hitsSkip3;
    stats::Scalar missesStat;

  private:
    /** Key for the table that resumes at @p depth. */
    std::uint64_t key(Addr va, ProcId asid, unsigned depth) const;

    bool enabled_;
    /** tables_[d-1] lets a walk resume at depth d (skip d levels). */
    std::vector<AssocCache<PwcEntry>> tables_;
};

} // namespace ap

#endif // AGILEPAGING_TLB_PWC_HH
