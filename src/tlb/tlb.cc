/**
 * @file
 * TLB implementation.
 */

#include "tlb/tlb.hh"

#include "base/bitfield.hh"

namespace ap
{

namespace
{
/** Virtual page number for this TLB's granule. */
std::uint64_t
vpnOf(Addr va, PageSize ps)
{
    return va >> pageShift(ps);
}
} // namespace

Tlb::Tlb(const std::string &name, stats::StatGroup *parent,
         std::size_t entries, std::size_t ways, PageSize ps)
    : stats::StatGroup(name, parent),
      hits(this, "hits", "translations served by this TLB"),
      misses(this, "misses", "probes that missed"),
      evictions(this, "evictions", "valid entries displaced"),
      ps_(ps),
      shift_(pageShift(ps)),
      cache_(entries, ways)
{
}

std::optional<TlbEntry>
Tlb::lookup(Addr va, ProcId asid)
{
    if (const TlbEntry *e = find(va, asid))
        return *e;
    return std::nullopt;
}

bool
Tlb::contains(Addr va, ProcId asid) const
{
    return cache_.peek(key(va, asid)) != nullptr;
}

void
Tlb::flushPage(Addr va, ProcId asid)
{
    cache_.erase(key(va, asid));
}

void
Tlb::flushAsid(ProcId asid)
{
    cache_.eraseIf([asid](std::uint64_t k, const TlbEntry &) {
        return (k >> 40) == asid;
    });
}

void
Tlb::flushRange(Addr base, Addr len, ProcId asid)
{
    // An empty range must not underflow base + len - 1 below: with
    // base == 0 that wraps to the top of the address space and turns
    // a no-op into a full-ASID flush.
    if (len == 0)
        return;
    std::uint64_t lo = vpnOf(base, ps_);
    std::uint64_t hi = vpnOf(base + len - 1, ps_);
    cache_.eraseIf([=](std::uint64_t k, const TlbEntry &) {
        std::uint64_t vpn = k & ((std::uint64_t{1} << 40) - 1);
        return (k >> 40) == asid && vpn >= lo && vpn <= hi;
    });
}

void
Tlb::flushAll()
{
    cache_.clear();
}

} // namespace ap
