/**
 * @file
 * CoherenceDomain implementation.
 */

#include "tlb/coherence.hh"

namespace ap
{

const char *
tlbCoherenceName(TlbCoherence c)
{
    return c == TlbCoherence::Hardware ? "hw" : "sw";
}

const char *
coherenceCauseName(CoherenceCause c)
{
    switch (c) {
      case CoherenceCause::Munmap:
        return "munmap";
      case CoherenceCause::Cow:
        return "cow";
      case CoherenceCause::Fork:
        return "fork";
      case CoherenceCause::Exit:
        return "exit";
      case CoherenceCause::Reclaim:
        return "reclaim";
      case CoherenceCause::ModeSwitch:
        return "mode_switch";
      case CoherenceCause::Resync:
        return "resync";
      case CoherenceCause::HostRemap:
        return "host_remap";
    }
    return "unknown";
}

CoherenceDomain::CoherenceDomain(stats::StatGroup *parent,
                                 TlbCoherence kind, Cycles ipi_cycles,
                                 Cycles hw_cycles)
    : stats::StatGroup("coherence", parent),
      kind_(kind),
      ipi_cycles_(ipi_cycles),
      hw_cycles_(hw_cycles),
      shootdowns_(this, "shootdowns",
                  "translation shootdowns broadcast to remote vCPUs"),
      remote_invals_(this, "remote_invalidations",
                     "per-remote-vCPU invalidations delivered"),
      coherence_cycles_(this, "coherence_cycles",
                        "guest cycles spent on translation coherence")
{
    by_cause_.reserve(kNumCoherenceCauses);
    for (std::size_t i = 0; i < kNumCoherenceCauses; ++i) {
        auto cause = static_cast<CoherenceCause>(i);
        by_cause_.push_back(std::make_unique<stats::Scalar>(
            this, std::string("shootdown_") + coherenceCauseName(cause),
            std::string("shootdowns caused by ") +
                coherenceCauseName(cause)));
    }
}

void
CoherenceDomain::addVcpu(TlbHierarchy *tlb, PageWalkCache *pwc)
{
    tlbs_.push_back(tlb);
    pwcs_.push_back(pwc);
}

void
CoherenceDomain::charge(CoherenceCause cause)
{
    // With no remote vCPUs there is nobody to notify: no shootdown,
    // no cycles. This is what keeps a 1-vCPU machine bit-identical to
    // the pre-coherence simulator.
    if (tlbs_.size() <= 1)
        return;
    std::size_t remotes = tlbs_.size() - 1;
    ++shootdowns_;
    ++*by_cause_[static_cast<std::size_t>(cause)];
    remote_invals_ += static_cast<double>(remotes);
    Cycles per_remote =
        kind_ == TlbCoherence::Software ? ipi_cycles_ : hw_cycles_;
    Cycles c = per_remote * static_cast<Cycles>(remotes);
    total_cycles_ += c;
    coherence_cycles_ += static_cast<double>(c);
}

void
CoherenceDomain::flushPage(Addr va, ProcId asid, CoherenceCause cause)
{
    for (TlbHierarchy *tlb : tlbs_)
        tlb->flushPage(va, asid);
    for (CoherenceListener *l : listeners_)
        l->onFlushPage(va, asid);
    charge(cause);
}

void
CoherenceDomain::flushRange(Addr base, Addr len, ProcId asid,
                            CoherenceCause cause)
{
    for (std::size_t v = 0; v < tlbs_.size(); ++v) {
        tlbs_[v]->flushRange(base, len, asid);
        if (pwcs_[v])
            pwcs_[v]->flushRange(base, len, asid);
    }
    for (CoherenceListener *l : listeners_)
        l->onFlushRange(base, len, asid);
    charge(cause);
}

void
CoherenceDomain::flushAsid(ProcId asid, CoherenceCause cause)
{
    for (std::size_t v = 0; v < tlbs_.size(); ++v) {
        tlbs_[v]->flushAsid(asid);
        if (pwcs_[v])
            pwcs_[v]->flushAsid(asid);
    }
    for (CoherenceListener *l : listeners_)
        l->onFlushAsid(asid);
    charge(cause);
}

void
CoherenceDomain::flushAsidUncharged(ProcId asid)
{
    for (std::size_t v = 0; v < tlbs_.size(); ++v) {
        tlbs_[v]->flushAsid(asid);
        if (pwcs_[v])
            pwcs_[v]->flushAsid(asid);
    }
    for (CoherenceListener *l : listeners_)
        l->onFlushAsid(asid);
}

void
CoherenceDomain::flushAll(CoherenceCause cause)
{
    for (std::size_t v = 0; v < tlbs_.size(); ++v) {
        tlbs_[v]->flushAll();
        if (pwcs_[v])
            pwcs_[v]->flushAll();
    }
    for (CoherenceListener *l : listeners_)
        l->onFlushAll();
    charge(cause);
}

} // namespace ap
