/**
 * @file
 * Backend registry implementation and default wiring.
 */

#include "core/backend_registry.hh"

#include "base/logging.hh"

namespace ap
{

BackendRegistry::BackendRegistry()
{
    // The classic paging families stay on the shared singletons (no
    // factory); range translation is the one stock stateful backend.
    registerFactory(VirtMode::Range, [](const BackendArgs &args) {
        return std::make_unique<RangeBackend>(args.statParent,
                                              args.numVcpus, args.range);
    });
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::registerFactory(VirtMode mode, BackendFactory factory)
{
    auto idx = static_cast<std::size_t>(mode);
    ap_assert(idx < std::size(factories_), "VirtMode out of range");
    factories_[idx] = std::move(factory);
}

bool
BackendRegistry::hasFactory(VirtMode mode) const
{
    auto idx = static_cast<std::size_t>(mode);
    ap_assert(idx < std::size(factories_), "VirtMode out of range");
    return static_cast<bool>(factories_[idx]);
}

std::unique_ptr<TranslationBackend>
BackendRegistry::create(VirtMode mode, const BackendArgs &args) const
{
    auto idx = static_cast<std::size_t>(mode);
    ap_assert(idx < std::size(factories_), "VirtMode out of range");
    if (!factories_[idx])
        return nullptr;
    auto backend = factories_[idx](args);
    ap_assert(backend != nullptr, "backend factory returned null");
    return backend;
}

std::unique_ptr<TranslationBackend>
makeTranslationBackend(VirtMode mode, const BackendArgs &args)
{
    return BackendRegistry::instance().create(mode, args);
}

} // namespace ap
