/**
 * @file
 * Agile paging mode-switch policies (paper Section III-C).
 *
 * Three cooperating policies decide the degree of nesting:
 *
 *  1. shadow=>nested: if the VMM mediates @ref writeThreshold writes to
 *     one guest-PT page within a fixed time interval, that page and
 *     everything below it move to nested mode ("a small threshold like
 *     the one used in branch predictors").
 *
 *  2. nested=>shadow: either the simple policy (periodically move
 *     everything back and let policy 1 re-demote the hot parts) or the
 *     effective policy (scan the dirty bits the host page table keeps
 *     on the frames backing nested guest-PT pages; pages that stayed
 *     clean for an interval return to shadow mode, parents before
 *     children).
 *
 *  3. short-lived/small processes: optionally start fully nested and
 *     engage shadowing only once measured TLB-miss overhead justifies
 *     building a shadow table.
 */

#ifndef AGILEPAGING_CORE_AGILE_POLICY_HH
#define AGILEPAGING_CORE_AGILE_POLICY_HH

#include <cstdint>

#include "base/stats.hh"
#include "base/types.hh"
#include "vmm/shadow_mgr.hh"

namespace ap
{

/** Which nested=>shadow reclamation policy runs each interval. */
enum class BackPolicy : std::uint8_t
{
    /** Never return to shadow (ablation baseline). */
    None,
    /** Simple: move everything back each interval. */
    PeriodicReset,
    /** Effective: move back only pages whose backing stayed clean. */
    DirtyScan,
};

/** Policy parameters. */
struct AgilePolicyConfig
{
    /** Mediated writes to one PT page within an interval that trigger
     *  demotion to nested mode (the paper uses 2). */
    std::uint32_t writeThreshold = 2;
    BackPolicy backPolicy = BackPolicy::DirtyScan;
    /** Short-lived/small-process administrative policy (Section
     *  III-C): start fully nested and engage shadowing only once
     *  TLB-miss overhead justifies it. Off by default — the paper
     *  assumes "the guest process starts in full shadow mode". */
    bool startNested = false;
    /** TLB-miss overhead (fraction of ideal cycles over the last
     *  interval) above which a fully-nested process may turn on
     *  shadow mode. */
    double tlbOverheadThreshold = 0.02;
    /** Model of how much longer nested walks are than shadow walks
     *  (used to project the benefit of engaging shadow mode). */
    double nestedWalkFactor = 3.0;
    /** Projected cost of one mediated PT write once shadowed. */
    Cycles projectedTrapCost = 1700;
    /** Engagement eagerness: engage when walk benefit exceeds this
     *  fraction of the projected mediation cost (< 1 is forgiving —
     *  once engaged, the spatial policy re-demotes hot PT regions). */
    double engageMargin = 0.5;
    /** Clean intervals required before a nested PT page returns to
     *  shadow mode (hysteresis against periodic write storms —
     *  reclaim scans, sharing-scan COW bursts — re-demoting it). */
    std::uint32_t promoteAfterCleanIntervals = 16;

};

/** Per-interval observations the machine passes to the policy. */
struct PolicySample
{
    /** Page-walk cycles this interval. */
    Cycles walkCycles = 0;
    /** Guest PT writes this interval (mediated or not). */
    std::uint64_t gptWrites = 0;
    /** Ideal cycles elapsed this interval. */
    Cycles idealCycles = 1;
};

/**
 * Drives ShadowMgr conversions for agile processes.
 */
class AgilePolicy : public stats::StatGroup
{
  public:
    AgilePolicy(stats::StatGroup *parent, ShadowMgr &mgr,
                const AgilePolicyConfig &cfg);

    /** Install policy state for a newly registered agile process. */
    void onProcessStart(ProcId proc);

    /**
     * Notification that a guest PT write at (@p va, @p depth) was
     * mediated (trapped). Demotes the written page to nested mode
     * when the write-burst threshold is reached.
     */
    void onMediatedWrite(ProcId proc, Addr va, unsigned depth,
                         const GptWriteOutcome &outcome);

    /** Fixed-interval policy tick with the interval's observations. */
    void onInterval(ProcId proc, const PolicySample &sample);

    const AgilePolicyConfig &config() const { return cfg_; }

    stats::Scalar demotions;
    stats::Scalar promotions;
    stats::Scalar shadowEngagements;

  private:
    void runBackPolicy(ShadowMgr::ProcState &p, ProcId proc);

    ShadowMgr &mgr_;
    AgilePolicyConfig cfg_;
};

} // namespace ap

#endif // AGILEPAGING_CORE_AGILE_POLICY_HH
