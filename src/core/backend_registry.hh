/**
 * @file
 * Registry mapping VirtMode to a translation-backend factory.
 *
 * The three classic paging families are stateless and served by the
 * shared singletons in walker/backend.hh; stateful backends (range
 * translation today, anything a fork adds tomorrow) are created per
 * machine through this registry so they can carry per-vCPU state and
 * register stats under the owning machine.
 */

#ifndef AGILEPAGING_CORE_BACKEND_REGISTRY_HH
#define AGILEPAGING_CORE_BACKEND_REGISTRY_HH

#include <functional>
#include <memory>

#include "base/stats.hh"
#include "core/range_backend.hh"
#include "walker/backend.hh"

namespace ap
{

/** Everything a backend factory may need at machine-construction
 *  time. */
struct BackendArgs
{
    /** Stat parent (the machine) for backends that register stats. */
    stats::StatGroup *statParent = nullptr;
    /** vCPUs in the machine (per-vCPU backend state). */
    unsigned numVcpus = 1;
    /** Range-backend geometry/cost knobs. */
    RangeBackendConfig range{};
};

using BackendFactory =
    std::function<std::unique_ptr<TranslationBackend>(const BackendArgs &)>;

/**
 * Process-wide factory table. Thread-safe for concurrent create()
 * calls as long as registration happens before machines are built
 * (registration is a start-up activity; the parallel matrix runner
 * only ever creates).
 */
class BackendRegistry
{
  public:
    static BackendRegistry &instance();

    /** Override or extend the factory for @p mode. */
    void registerFactory(VirtMode mode, BackendFactory factory);

    /** True when @p mode needs a per-machine backend instance. */
    bool hasFactory(VirtMode mode) const;

    /**
     * Create the backend instance for @p mode, or nullptr for modes
     * served by the shared stateless singletons (the caller falls back
     * to builtinBackend()).
     */
    std::unique_ptr<TranslationBackend>
    create(VirtMode mode, const BackendArgs &args) const;

  private:
    BackendRegistry();

    std::function<std::unique_ptr<TranslationBackend>(
        const BackendArgs &)> factories_[6];
};

/** Shorthand for BackendRegistry::instance().create(). */
std::unique_ptr<TranslationBackend>
makeTranslationBackend(VirtMode mode, const BackendArgs &args);

} // namespace ap

#endif // AGILEPAGING_CORE_BACKEND_REGISTRY_HH
