/**
 * @file
 * Agile policy implementation.
 */

#include "core/agile_policy.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"

namespace ap
{

AgilePolicy::AgilePolicy(stats::StatGroup *parent, ShadowMgr &mgr,
                         const AgilePolicyConfig &cfg)
    : stats::StatGroup("policy", parent),
      demotions(this, "demotions", "PT pages demoted to nested mode"),
      promotions(this, "promotions", "PT pages promoted back to shadow"),
      shadowEngagements(this, "shadow_engagements",
                        "fully-nested processes that engaged shadowing"),
      mgr_(mgr),
      cfg_(cfg)
{
}

void
AgilePolicy::onProcessStart(ProcId proc)
{
    if (cfg_.startNested) {
        // Short-lived/small-process policy: begin with sptr == gptr
        // (pure nested paging) until overheads justify shadowing.
        mgr_.context(proc).fullNested = true;
    }
}

void
AgilePolicy::onMediatedWrite(ProcId proc, Addr va, unsigned depth,
                             const GptWriteOutcome &outcome)
{
    if (!outcome.trapped || !outcome.node)
        return;
    if (outcome.node->intervalWrites >= cfg_.writeThreshold) {
        mgr_.convertToNested(proc, va, depth);
        ++demotions;
    }
}

void
AgilePolicy::runBackPolicy(ShadowMgr::ProcState &p, ProcId proc)
{
    if (cfg_.backPolicy == BackPolicy::None)
        return;

    // Snapshot nested nodes, parents first (depth ascending) — the
    // paper requires parent levels to convert before children.
    struct Item
    {
        FrameId gframe;
        Addr vaBase;
        unsigned depth;
    };
    std::vector<Item> nested;
    for (const auto &[gframe, node] : p.nodes) {
        if (node.nested)
            nested.push_back(Item{gframe, node.vaBase, node.depth});
    }
    std::sort(nested.begin(), nested.end(),
              [](const Item &a, const Item &b) {
                  return a.depth < b.depth;
              });

    for (const Item &item : nested) {
        GptNode &node = p.nodes.at(item.gframe);
        if (cfg_.backPolicy == BackPolicy::DirtyScan) {
            // Pages whose backing frame was written this interval stay
            // nested; consuming the bit re-arms the next interval. A
            // page must stay clean for several consecutive intervals
            // before it converts back (hysteresis).
            if (mgr_.vmm().consumeGptDirty(item.gframe)) {
                node.cleanIntervals = 0;
                continue;
            }
            ++node.cleanIntervals;
            if (node.cleanIntervals < cfg_.promoteAfterCleanIntervals)
                continue;
        }
        // Convert only when the parent is (back) in shadow mode.
        if (item.depth > 0) {
            FrameId parent =
                item.depth == 1
                    ? p.gptRootGframe
                    : p.gpt->tableFrame(item.vaBase, item.depth - 1);
            auto pit = p.nodes.find(parent);
            if (pit != p.nodes.end() && pit->second.nested)
                continue;
        }
        mgr_.convertToShadow(proc, item.vaBase, item.depth);
        ++promotions;
    }
}

void
AgilePolicy::onInterval(ProcId proc, const PolicySample &sample)
{
    ShadowMgr::ProcState &p = mgr_.state(proc);

    if (p.ctx.fullNested) {
        // Short-lived policy: engage agile shadowing once the process
        // demonstrably suffers from TLB misses *and* the projected
        // mediation cost of its current PT-update rate would not eat
        // the walk savings (during warmup the update rate is huge, so
        // nested mode correctly persists).
        double walk_frac = static_cast<double>(sample.walkCycles) /
                           static_cast<double>(sample.idealCycles);
        double walk_benefit = static_cast<double>(sample.walkCycles) *
                              (1.0 - 1.0 / cfg_.nestedWalkFactor);
        double projected = static_cast<double>(sample.gptWrites) *
                           static_cast<double>(cfg_.projectedTrapCost);
        if (walk_frac > cfg_.tlbOverheadThreshold &&
            walk_benefit > projected * cfg_.engageMargin) {
            p.ctx.fullNested = false;
            // The sptr register write invalidates cached partial
            // walks of the old (fully nested) mode.
            mgr_.onModeRegisterWrite(proc);
            ++shadowEngagements;
        }
        return;
    }

    // Catch bursts the unsync window hid: demote any shadowed page
    // whose interval count reached the threshold via resyncs.
    struct Demote
    {
        Addr vaBase;
        unsigned depth;
    };
    std::vector<Demote> to_demote;
    for (auto &[gframe, node] : p.nodes) {
        if (!node.nested && node.intervalWrites >= cfg_.writeThreshold)
            to_demote.push_back(Demote{node.vaBase, node.depth});
    }
    for (const Demote &d : to_demote) {
        mgr_.convertToNested(proc, d.vaBase, d.depth);
        ++demotions;
    }

    runBackPolicy(p, proc);

    // New interval: write bursts start counting from zero again.
    for (auto &[gframe, node] : p.nodes)
        node.intervalWrites = 0;
}

} // namespace ap
