/**
 * @file
 * Range/segment translation backend implementation.
 */

#include "core/range_backend.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/serialize.hh"

namespace ap
{

RangeBackend::RangeBackend(stats::StatGroup *parent, unsigned num_vcpus,
                           const RangeBackendConfig &cfg)
    : TranslationBackend(VirtMode::Range),
      stats::StatGroup("segments", parent),
      cfg_(cfg),
      segment_hits_(this, "segment_hits",
                    "walks translated by a segment register (0 refs)"),
      segment_fills_(this, "segment_fills",
                     "segment registers installed after a miss"),
      segment_spills_(this, "segment_spills",
                      "segment installs that evicted a live register"),
      segment_invalidations_(this, "segment_invalidations",
                             "segments dropped by coherence or "
                             "validation")
{
    ap_assert(cfg_.segmentRegs > 0, "segment file must have registers");
    ap_assert(cfg_.segmentMinPages > 0, "segmentMinPages must be > 0");
    ap_assert(cfg_.segmentMaxPages >= cfg_.segmentMinPages,
              "segmentMaxPages must cover segmentMinPages");
    files_.resize(num_vcpus ? num_vcpus : 1);
    for (File &f : files_)
        f.resize(cfg_.segmentRegs);
}

RangeBackend::SegmentReg *
RangeBackend::find(File &file, ProcId asid, Addr va)
{
    FrameId page = frameOf(va);
    for (SegmentReg &seg : file) {
        if (!seg.pages || seg.asid != asid)
            continue;
        FrameId base = frameOf(seg.vaBase);
        if (page >= base && page - base < seg.pages)
            return &seg;
    }
    return nullptr;
}

void
RangeBackend::serviceWalk(Walker &w, unsigned vcpu,
                          const TranslationContext &ctx, Addr va,
                          bool is_write, WalkResult &r)
{
    ap_assert(vcpu < files_.size(), "vcpu ", vcpu, " has no segment file");
    File &file = files_[vcpu];

    if (SegmentReg *seg = find(file, ctx.asid, va)) {
        // Validate the linear prediction against the architectural
        // translation: a segment accelerates the walk, it never
        // overrides the page tables.
        auto leaf = w.archNestedLeaf(ctx, va);
        FrameId predicted =
            seg->hbase + (frameOf(va) - frameOf(seg->vaBase));
        if (leaf && leaf->h4k == predicted) {
            seg->lastUse = ++lru_tick_;
            ++segment_hits_;
            r.hframe = leaf->h4k;
            r.size = PageSize::Size4K;
            r.writable = leaf->writable;
            // Same leaf A/D side effects a real walk applies.
            leaf->guestLeaf->accessed = true;
            if (is_write && leaf->writable) {
                if (!leaf->guestLeaf->dirty)
                    r.dirtyTransition = true;
                leaf->guestLeaf->dirty = true;
            }
            r.dirty = leaf->guestLeaf->dirty;
            return;
        }
        // The mapping moved under the segment: self-heal by dropping
        // it and falling back to paging. (Coherence hooks should have
        // caught this; the residency sweep flags the window.)
        seg->pages = 0;
        ++segment_invalidations_;
    }

    w.nestedWalk(ctx, va, is_write, r);
    if (r.ok())
        maybeInstall(w, file, ctx, va, r);
}

void
RangeBackend::maybeInstall(Walker &w, File &file,
                           const TranslationContext &ctx, Addr va,
                           WalkResult &r)
{
    auto leaf = w.archNestedLeaf(ctx, va);
    if (!leaf)
        return;
    FrameId page0 = frameOf(va);
    FrameId h0 = leaf->h4k;

    // Extend left while guest pages stay host-contiguous.
    std::uint64_t left = 0;
    while (left + 1 < cfg_.segmentMaxPages && page0 > left &&
           h0 > left) {
        auto l = w.archNestedLeaf(ctx, frameAddr(page0 - left - 1));
        if (!l || l->h4k != h0 - left - 1)
            break;
        ++left;
    }
    // Extend right.
    std::uint64_t right = 0;
    while (left + 1 + right < cfg_.segmentMaxPages) {
        auto l = w.archNestedLeaf(ctx, frameAddr(page0 + right + 1));
        if (!l || l->h4k != h0 + right + 1)
            break;
        ++right;
    }

    std::uint64_t pages = left + 1 + right;
    if (pages < cfg_.segmentMinPages)
        return;

    Addr va_base = frameAddr(page0 - left);
    // Retire any same-asid register the new run overlaps (the new
    // segment subsumes it; not an invalidation, not a spill).
    for (SegmentReg &seg : file) {
        if (!seg.pages || seg.asid != ctx.asid)
            continue;
        Addr seg_end = seg.vaBase + seg.pages * kPageBytes;
        Addr new_end = va_base + pages * kPageBytes;
        if (seg.vaBase < new_end && va_base < seg_end)
            seg.pages = 0;
    }

    // Pick a free register, else evict the LRU one (a spill).
    SegmentReg *slot = nullptr;
    for (SegmentReg &seg : file) {
        if (!seg.pages) {
            slot = &seg;
            break;
        }
    }
    if (!slot) {
        slot = &file.front();
        for (SegmentReg &seg : file)
            if (seg.lastUse < slot->lastUse)
                slot = &seg;
        ++segment_spills_;
    }

    *slot = SegmentReg{ctx.asid, va_base, pages, h0 - left, ++lru_tick_};
    ++segment_fills_;
    r.extraCycles += cfg_.segmentFillCycles;
}

template <typename Pred>
void
RangeBackend::dropSegments(Pred &&pred, bool count_invalidation)
{
    for (File &file : files_) {
        for (SegmentReg &seg : file) {
            if (!seg.pages || !pred(seg))
                continue;
            seg.pages = 0;
            if (count_invalidation)
                ++segment_invalidations_;
        }
    }
}

void
RangeBackend::onFlushPage(Addr va, ProcId asid)
{
    FrameId page = frameOf(va);
    dropSegments(
        [&](const SegmentReg &seg) {
            FrameId base = frameOf(seg.vaBase);
            return seg.asid == asid && page >= base &&
                   page - base < seg.pages;
        },
        true);
}

void
RangeBackend::onFlushRange(Addr base, Addr len, ProcId asid)
{
    dropSegments(
        [&](const SegmentReg &seg) {
            Addr seg_end = seg.vaBase + seg.pages * kPageBytes;
            return seg.asid == asid && seg.vaBase < base + len &&
                   base < seg_end;
        },
        true);
}

void
RangeBackend::onFlushAsid(ProcId asid)
{
    dropSegments([&](const SegmentReg &seg) { return seg.asid == asid; },
                 true);
}

void
RangeBackend::onFlushAll()
{
    dropSegments([](const SegmentReg &) { return true; }, true);
}

void
RangeBackend::plantSegment(unsigned vcpu, const SegmentReg &seg)
{
    ap_assert(vcpu < files_.size(), "vcpu ", vcpu, " has no segment file");
    files_[vcpu].at(0) = seg;
}

void
RangeBackend::saveState(Serializer &s) const
{
    s.putMarker(0x53454746u); // 'SEGF'
    s.putU64(lru_tick_);
    s.putU64(files_.size());
    for (const File &file : files_) {
        s.putU64(file.size());
        for (const SegmentReg &seg : file) {
            s.putU32(seg.asid);
            s.putU64(seg.vaBase);
            s.putU64(seg.pages);
            s.putU64(seg.hbase);
            s.putU64(seg.lastUse);
        }
    }
}

void
RangeBackend::restoreState(Deserializer &d)
{
    d.checkMarker(0x53454746u);
    lru_tick_ = d.getU64();
    std::uint64_t nfiles = d.getU64();
    ap_assert(nfiles == files_.size(),
              "segment-file count mismatch on restore");
    for (File &file : files_) {
        std::uint64_t nregs = d.getU64();
        ap_assert(nregs == file.size(),
                  "segment-register count mismatch on restore");
        for (SegmentReg &seg : file) {
            seg.asid = d.getU32();
            seg.vaBase = d.getU64();
            seg.pages = d.getU64();
            seg.hbase = d.getU64();
            seg.lastUse = d.getU64();
        }
    }
}

} // namespace ap
