/**
 * @file
 * Range/segment translation backend (the fourth mode).
 *
 * Teabe et al. ("Memory virtualization in virtualized systems:
 * segmentation is better than paging") observe that guest VMAs are
 * overwhelmingly contiguous in host physical memory, so a handful of
 * base+limit segment registers can translate them in zero memory
 * references — paging remains only as a fallback for fragmented
 * regions. This backend models that design on top of the existing
 * nested machinery:
 *
 *  - Each vCPU owns a small segment-register file. A register maps a
 *    contiguous run of guest-virtual 4 KB pages to a contiguous run of
 *    host frames for one address space.
 *  - A walk first probes the file. A hit is validated against the
 *    current architectural nested translation (so a segment can make a
 *    walk cheaper, never wrong), costs zero walk references, and
 *    applies the same leaf accessed/dirty side effects a real walk
 *    would.
 *  - A miss falls back to the ordinary 2D nested walk, then scans the
 *    neighbourhood for host-contiguous pages; a long enough run is
 *    installed into the file (evicting the LRU register — a spill —
 *    when full) and charged segmentFillCycles of setup cost.
 *  - Invalidations ride the CoherenceDomain: every munmap/COW/reclaim
 *    broadcast that flushes the TLBs also drops overlapping segments,
 *    on every vCPU. A segment that outlives its mapping is exactly the
 *    stale-translation bug the difftest's residency sweep hunts.
 */

#ifndef AGILEPAGING_CORE_RANGE_BACKEND_HH
#define AGILEPAGING_CORE_RANGE_BACKEND_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "tlb/coherence.hh"
#include "walker/backend.hh"

namespace ap
{

/** Segment-register file geometry and cost knobs. */
struct RangeBackendConfig
{
    /** Segment registers per vCPU. */
    std::uint32_t segmentRegs = 16;
    /** Smallest host-contiguous run (in 4 KB pages) worth a segment
     *  register; shorter runs stay on the paging fallback. */
    std::uint64_t segmentMinPages = 8;
    /** Longest run one register may cover, and the bound on the
     *  contiguity scan a miss performs (512 pages = one 2 MB run). */
    std::uint64_t segmentMaxPages = 512;
    /** One-time cycle cost of installing a segment register (the
     *  hypervisor's register-file update path). */
    Cycles segmentFillCycles = 300;
};

/**
 * The range backend: per-vCPU segment-register files over the nested
 * paging fallback.
 */
class RangeBackend final : public TranslationBackend,
                           public CoherenceListener,
                           public stats::StatGroup
{
  public:
    /** One base+limit segment register. pages == 0 means free. */
    struct SegmentReg
    {
        ProcId asid = 0;
        /** First guest-virtual address covered (4 KB aligned). */
        Addr vaBase = 0;
        /** Length in 4 KB pages (0 = free register). */
        std::uint64_t pages = 0;
        /** Host frame backing vaBase; page i lives at hbase + i. */
        FrameId hbase = 0;
        /** LRU timestamp (monotonic probe tick). */
        std::uint64_t lastUse = 0;
    };

    RangeBackend(stats::StatGroup *parent, unsigned num_vcpus,
                 const RangeBackendConfig &cfg);

    void serviceWalk(Walker &w, unsigned vcpu,
                     const TranslationContext &ctx, Addr va,
                     bool is_write, WalkResult &r) override;

    Walker::PrimeState
    primeStart(const TranslationContext &ctx) const override
    {
        // The fallback is the plain nested walk; segments need no
        // priming (they touch no page-table memory).
        return {ctx.gptRootBacking, true};
    }

    CoherenceListener *coherenceListener() override { return this; }

    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

    /** CoherenceListener: drop segments the broadcast invalidates. */
    void onFlushPage(Addr va, ProcId asid) override;
    void onFlushRange(Addr base, Addr len, ProcId asid) override;
    void onFlushAsid(ProcId asid) override;
    void onFlushAll() override;

    unsigned numVcpus() const { return static_cast<unsigned>(files_.size()); }

    /** Visit every live segment of @p vcpu's file (residency sweep). */
    template <typename Fn>
    void
    forEachSegment(unsigned vcpu, Fn &&fn) const
    {
        for (const SegmentReg &seg : files_[vcpu])
            if (seg.pages)
                fn(seg);
    }

    /**
     * Test hook: plant a raw segment register, bypassing installation
     * and validation. The difftest uses it to prove the residency
     * sweep catches a stale segment.
     */
    void plantSegment(unsigned vcpu, const SegmentReg &seg);

    const RangeBackendConfig &config() const { return cfg_; }

    std::uint64_t
    hitCount() const
    { return static_cast<std::uint64_t>(segment_hits_.value()); }

    std::uint64_t
    spillCount() const
    { return static_cast<std::uint64_t>(segment_spills_.value()); }

    std::uint64_t
    invalidationCount() const
    { return static_cast<std::uint64_t>(segment_invalidations_.value()); }

  private:
    using File = std::vector<SegmentReg>;

    /** @return the live register of @p file covering (asid, va), or
     *  nullptr. */
    SegmentReg *find(File &file, ProcId asid, Addr va);

    /** Scan around @p va for host-contiguous backing and install a
     *  segment when the run is long enough. */
    void maybeInstall(Walker &w, File &file,
                      const TranslationContext &ctx, Addr va,
                      WalkResult &r);

    /** Drop every live segment matching @p pred (counted as
     *  invalidations when @p count_invalidation). */
    template <typename Pred>
    void dropSegments(Pred &&pred, bool count_invalidation);

    RangeBackendConfig cfg_;
    std::vector<File> files_;
    std::uint64_t lru_tick_ = 0;

    stats::Scalar segment_hits_;
    stats::Scalar segment_fills_;
    stats::Scalar segment_spills_;
    stats::Scalar segment_invalidations_;
};

} // namespace ap

#endif // AGILEPAGING_CORE_RANGE_BACKEND_HH
