/**
 * @file
 * Implementation of deterministic RNG and samplers.
 */

#include "base/rng.hh"

#include <cmath>

#include "base/logging.hh"

namespace ap
{

namespace
{
std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    ap_assert(bound > 0, "nextBelow(0)");
    // Lemire-style multiply-shift; bias is negligible for 64-bit space.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    ap_assert(lo <= hi, "nextRange lo > hi");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    ap_assert(n > 0, "ZipfSampler needs n > 0");
    ap_assert(theta > 0.0, "ZipfSampler needs theta > 0");
    h_integral_x1_ = hIntegral(1.5) - 1.0;
    h_integral_n_ = hIntegral(static_cast<double>(n) + 0.5);
    s_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double
ZipfSampler::h(double x) const
{
    return std::exp(-theta_ * std::log(x));
}

double
ZipfSampler::hIntegral(double x) const
{
    double log_x = std::log(x);
    // Integral of x^-theta; handle theta == 1 via the log limit.
    double t = (1.0 - theta_) * log_x;
    double helper = (std::abs(t) > 1e-8) ? std::expm1(t) / t : 1.0 + t / 2.0;
    return log_x * helper;
}

double
ZipfSampler::hIntegralInverse(double x) const
{
    double t = x * (1.0 - theta_);
    if (t < -1.0)
        t = -1.0;
    double helper =
        (std::abs(t) > 1e-8) ? std::log1p(t) / t : 1.0 - t / 2.0;
    return std::exp(x * helper);
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (n_ == 1)
        return 0;
    while (true) {
        double u = h_integral_n_ +
                   rng.nextDouble() * (h_integral_x1_ - h_integral_n_);
        double x = hIntegralInverse(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > n_)
            k = n_;
        double kd = static_cast<double>(k);
        if (kd - x <= s_ || u >= hIntegral(kd + 0.5) - h(kd)) {
            return k - 1; // return 0-based rank
        }
    }
}

WeightedPicker::WeightedPicker(std::vector<double> weights)
{
    ap_assert(!weights.empty(), "WeightedPicker needs weights");
    double sum = 0.0;
    cumulative_.reserve(weights.size());
    for (double w : weights) {
        ap_assert(w >= 0.0, "negative weight");
        sum += w;
        cumulative_.push_back(sum);
    }
    ap_assert(sum > 0.0, "all weights zero");
    for (double &c : cumulative_)
        c /= sum;
}

std::size_t
WeightedPicker::pick(Rng &rng) const
{
    double u = rng.nextDouble();
    for (std::size_t i = 0; i < cumulative_.size(); ++i) {
        if (u < cumulative_[i])
            return i;
    }
    return cumulative_.size() - 1;
}

} // namespace ap
