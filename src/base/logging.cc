/**
 * @file
 * Implementation of gem5-style status and error reporting.
 */

#include "base/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace ap
{

namespace
{
bool quiet_logging = false;

const char *
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Inform:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Panic:
        return "panic";
    }
    return "?";
}
} // namespace

void
setQuietLogging(bool quiet)
{
    quiet_logging = quiet;
}

namespace detail
{

void
logMessage(LogLevel lvl, const std::string &msg)
{
    if (quiet_logging)
        return;
    std::cerr << levelName(lvl) << ": " << msg << "\n";
}

void
logFatal(LogLevel lvl, const std::string &msg, const char *file, int line)
{
    std::cerr << levelName(lvl) << ": " << msg << " (" << file << ":" << line
              << ")\n";
    if (lvl == LogLevel::Panic) {
        // Throwing (rather than abort()) lets death-style unit tests
        // observe simulator-bug reports without killing the process.
        throw std::logic_error("panic: " + msg);
    }
    std::exit(1);
}

} // namespace detail

} // namespace ap
