/**
 * @file
 * Flat binary serialization for machine snapshots.
 *
 * A Serializer appends fixed-width little-endian-in-memory fields to a
 * byte buffer; a Deserializer reads them back in the same order. Every
 * component that participates in MachineSnapshot implements
 * saveState(Serializer &) / restoreState(Deserializer &) against this
 * pair. The format carries no per-field tags — save and restore walk
 * the exact same deterministic structure — so integrity is enforced by
 * the snapshot container (magic, config digest, checksum) plus
 * strategic marker/name checks inside the stream.
 */

#ifndef AGILEPAGING_BASE_SERIALIZE_HH
#define AGILEPAGING_BASE_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace ap
{

/** Append-only writer over a growable byte buffer. */
class Serializer
{
  public:
    void
    putU8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void putBool(bool v) { putU8(v ? 1 : 0); }

    void
    putU32(std::uint32_t v)
    {
        putRaw(&v, sizeof(v));
    }

    void
    putU64(std::uint64_t v)
    {
        putRaw(&v, sizeof(v));
    }

    void
    putDouble(double v)
    {
        static_assert(sizeof(double) == 8, "unexpected double size");
        putRaw(&v, sizeof(v));
    }

    void
    putString(const std::string &s)
    {
        putU64(s.size());
        putRaw(s.data(), s.size());
    }

    void
    putRaw(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    /** Length-prefixed vector of a trivially copyable element type. */
    template <typename T>
    void
    putPodVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "putPodVector needs a trivially copyable element");
        putU64(v.size());
        if (!v.empty())
            putRaw(v.data(), v.size() * sizeof(T));
    }

    /** Structure marker for debugging truncated/misaligned streams. */
    void putMarker(std::uint32_t m) { putU32(m); }

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::vector<std::uint8_t> takeData() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked reader. A read past the end (or a failed marker
 * check) latches ok() to false and yields zero values; callers assert
 * ok() at restore boundaries.
 */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t size)
        : p_(data), end_(data + size)
    {
    }

    explicit Deserializer(const std::vector<std::uint8_t> &buf)
        : Deserializer(buf.data(), buf.size())
    {
    }

    std::uint8_t
    getU8()
    {
        std::uint8_t v = 0;
        getRaw(&v, sizeof(v));
        return v;
    }

    bool getBool() { return getU8() != 0; }

    std::uint32_t
    getU32()
    {
        std::uint32_t v = 0;
        getRaw(&v, sizeof(v));
        return v;
    }

    std::uint64_t
    getU64()
    {
        std::uint64_t v = 0;
        getRaw(&v, sizeof(v));
        return v;
    }

    double
    getDouble()
    {
        double v = 0;
        getRaw(&v, sizeof(v));
        return v;
    }

    std::string
    getString()
    {
        std::uint64_t n = getU64();
        if (!has(n)) {
            ok_ = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(p_),
                      static_cast<std::size_t>(n));
        p_ += n;
        return s;
    }

    void
    getRaw(void *out, std::size_t n)
    {
        if (!has(n)) {
            ok_ = false;
            std::memset(out, 0, n);
            return;
        }
        std::memcpy(out, p_, n);
        p_ += n;
    }

    template <typename T>
    void
    getPodVector(std::vector<T> &out)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "getPodVector needs a trivially copyable element");
        std::uint64_t n = getU64();
        if (!has(n * sizeof(T))) {
            ok_ = false;
            out.clear();
            return;
        }
        out.resize(static_cast<std::size_t>(n));
        if (n)
            getRaw(out.data(), static_cast<std::size_t>(n) * sizeof(T));
    }

    /** Consume a marker; mismatch latches failure. */
    void
    checkMarker(std::uint32_t expected)
    {
        if (getU32() != expected)
            ok_ = false;
    }

    bool ok() const { return ok_; }
    /** Latch failure from an application-level integrity check. */
    void fail() { ok_ = false; }
    std::size_t remaining() const { return std::size_t(end_ - p_); }

  private:
    bool
    has(std::uint64_t n) const
    {
        return ok_ && n <= std::uint64_t(end_ - p_);
    }

    const std::uint8_t *p_;
    const std::uint8_t *end_;
    bool ok_ = true;
};

} // namespace ap

#endif // AGILEPAGING_BASE_SERIALIZE_HH
