/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Statistics register themselves with a StatGroup on construction; a group
 * can dump all of its stats as aligned text or CSV. Three kinds are
 * provided: Scalar (a counter), Distribution (bucketed histogram with
 * moments), and Formula (a derived value evaluated at dump time).
 */

#ifndef AGILEPAGING_BASE_STATS_HH
#define AGILEPAGING_BASE_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "base/serialize.hh"

namespace ap::stats
{

class StatGroup;

/** Base class: a named, described statistic owned by a group. */
class StatBase
{
  public:
    StatBase(StatGroup *group, std::string name, std::string desc);
    /** Deregisters from the owning group (if the group is still
     *  alive), so a stat destroyed before its group never leaves a
     *  dangling pointer in the group's registry. */
    virtual ~StatBase();

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render the stat's value(s) to @p os, one line per value. */
    virtual void print(std::ostream &os, const std::string &prefix) const = 0;

    /** Render the stat as a JSON object (no surrounding name key). */
    virtual void printJson(std::ostream &os) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

    /** Append the stat's mutable state (snapshot support). Formulas
     *  carry no state of their own and write nothing. */
    virtual void saveValues(Serializer &s) const = 0;

    /** Restore state written by saveValues. The restored stat must be
     *  indistinguishable from the saved one — including reset()
     *  behaviour afterwards (distribution min/max rearm etc.). */
    virtual void restoreValues(Deserializer &d) = 0;

  private:
    friend class StatGroup;

    std::string name_;
    std::string desc_;
    /** Owning group; nulled if the group is destroyed first. */
    StatGroup *group_ = nullptr;
};

/** A simple additive counter. */
class Scalar : public StatBase
{
  public:
    Scalar(StatGroup *group, std::string name, std::string desc);

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    void set(double v) { value_ = v; }

    double value() const { return value_; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os) const override;
    void reset() override { value_ = 0.0; }
    void saveValues(Serializer &s) const override { s.putDouble(value_); }
    void restoreValues(Deserializer &d) override { value_ = d.getDouble(); }

  private:
    double value_ = 0.0;
};

/**
 * A bucketed histogram that also tracks count/sum/min/max, enough to
 * report a mean and a distribution shape.
 */
class Distribution : public StatBase
{
  public:
    /**
     * @param min,max inclusive value range covered by buckets
     * @param bucket_size width of each bucket (> 0)
     */
    Distribution(StatGroup *group, std::string name, std::string desc,
                 std::uint64_t min, std::uint64_t max,
                 std::uint64_t bucket_size);

    void sample(std::uint64_t value, std::uint64_t count = 1);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t minSeen() const { return min_seen_; }
    std::uint64_t maxSeen() const { return max_seen_; }
    /** Samples below min / above max land in underflow/overflow. */
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os) const override;
    void reset() override;
    void saveValues(Serializer &s) const override;
    void restoreValues(Deserializer &d) override;

  private:
    std::uint64_t min_;
    std::uint64_t max_;
    std::uint64_t bucket_size_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_seen_ = ~std::uint64_t{0};
    std::uint64_t max_seen_ = 0;
};

/** A derived statistic evaluated lazily at dump time. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *group, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_ ? fn_() : 0.0; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os) const override;
    void reset() override {}
    void saveValues(Serializer &) const override {}
    void restoreValues(Deserializer &) override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics; groups can nest to build a
 * hierarchy (machine.tlb.l1d.hits etc.).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &groupName() const { return name_; }

    /** Dump this group and all children to @p os. */
    void dump(std::ostream &os) const;

    /**
     * Dump this group and all children as one JSON object. The root
     * object carries a versioned "schema" field ("ap-stats-v1") so
     * consumers can detect format drift; every group contributes
     * {"name", "stats": {name: stat-object}, "groups": {name: group}}.
     */
    void dumpJson(std::ostream &os) const;

    /** Reset every stat in this group and its children. */
    void resetStats();

    /** Look up a direct child stat by name; nullptr if absent. */
    const StatBase *findStat(const std::string &name) const;

    /**
     * Serialize every stat value in this group and its children, in
     * registration order, with name guards. Two machines built from
     * the same config register identical trees, so a tree saved on one
     * restores onto the other exactly.
     */
    void saveStatsTree(Serializer &s) const;

    /** Restore a tree written by saveStatsTree. Latches the
     *  deserializer's failure flag if the tree shapes or stat names
     *  disagree. */
    void restoreStatsTree(Deserializer &d);

  private:
    friend class StatBase;

    void dumpWithPrefix(std::ostream &os, const std::string &prefix) const;
    void dumpJsonGroup(std::ostream &os) const;

    std::string name_;
    StatGroup *parent_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> children_;
};

} // namespace ap::stats

#endif // AGILEPAGING_BASE_STATS_HH
