/**
 * @file
 * gem5-style trace-based debugging.
 *
 * Debug output is organized into per-subsystem flags that can be
 * toggled at runtime (programmatically or via the AP_DEBUG environment
 * variable, e.g. AP_DEBUG=walker,policy). The AP_DPRINTF macro is
 * cheap when its flag is off: one branch on a cached bool.
 */

#ifndef AGILEPAGING_BASE_DEBUG_HH
#define AGILEPAGING_BASE_DEBUG_HH

#include <cstddef>
#include <string>

#include "base/logging.hh"

namespace ap::debug
{

/** Debug-output categories. */
enum class Flag : std::size_t
{
    Walker,
    Tlb,
    Vmm,
    Shadow,
    Policy,
    GuestOs,
    Machine,
    NumFlags,
};

inline constexpr std::size_t kNumFlags =
    static_cast<std::size_t>(Flag::NumFlags);

/** @return true if output for @p flag is enabled. */
bool enabled(Flag flag);

/** Enable/disable one flag. */
void setFlag(Flag flag, bool on);

/**
 * Enable flags from a comma-separated list of names ("walker,shadow",
 * case-insensitive; "all" enables everything).
 * @return false if any name was not recognized.
 */
bool setFlagsFromString(const std::string &list);

/** Parse the AP_DEBUG environment variable (called lazily once). */
void initFromEnvironment();

/** @return the canonical name of a flag. */
const char *flagName(Flag flag);

/** Emit one trace line (used by AP_DPRINTF; goes to stderr). */
void printLine(Flag flag, const std::string &msg);

} // namespace ap::debug

/**
 * gem5-style DPRINTF: AP_DPRINTF(Walker, "va=", va, " refs=", refs);
 */
#define AP_DPRINTF(flag, ...)                                               \
    do {                                                                    \
        if (::ap::debug::enabled(::ap::debug::Flag::flag)) {                \
            ::ap::debug::printLine(::ap::debug::Flag::flag,                 \
                                   ::ap::detail::format(__VA_ARGS__));      \
        }                                                                   \
    } while (0)

#endif // AGILEPAGING_BASE_DEBUG_HH
