/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() is for simulator bugs (aborts); fatal() is for user error
 * (clean exit); warn()/inform() report conditions without stopping.
 */

#ifndef AGILEPAGING_BASE_LOGGING_HH
#define AGILEPAGING_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace ap
{

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/** Emit a message and, for Fatal/Panic, terminate. */
[[noreturn]] void logFatal(LogLevel lvl, const std::string &msg,
                           const char *file, int line);
void logMessage(LogLevel lvl, const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report a condition that should never happen: a simulator bug. */
#define ap_panic(...)                                                       \
    ::ap::detail::logFatal(::ap::LogLevel::Panic,                           \
                           ::ap::detail::format(__VA_ARGS__), __FILE__,     \
                           __LINE__)

/** Report a condition caused by bad user input or configuration. */
#define ap_fatal(...)                                                       \
    ::ap::detail::logFatal(::ap::LogLevel::Fatal,                           \
                           ::ap::detail::format(__VA_ARGS__), __FILE__,     \
                           __LINE__)

/** Report suspicious but survivable behaviour. */
#define ap_warn(...)                                                        \
    ::ap::detail::logMessage(::ap::LogLevel::Warn,                          \
                             ::ap::detail::format(__VA_ARGS__))

/** Report normal operating status. */
#define ap_inform(...)                                                      \
    ::ap::detail::logMessage(::ap::LogLevel::Inform,                        \
                             ::ap::detail::format(__VA_ARGS__))

/** panic() if a simulator invariant does not hold. */
#define ap_assert(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ap_panic("assertion failed: " #cond " ",                        \
                     ::ap::detail::format(__VA_ARGS__));                    \
        }                                                                   \
    } while (0)

/** Silence inform/warn output (used by benchmarks). */
void setQuietLogging(bool quiet);

} // namespace ap

#endif // AGILEPAGING_BASE_LOGGING_HH
