/**
 * @file
 * Fundamental types shared by every subsystem: addresses, cycles,
 * page-size enumeration and the x86-64 radix page-table geometry.
 *
 * The simulator models a 4-level x86-64-style page table. Walk depths are
 * numbered from the root: depth 0 is the top level (the paper's "L4" /
 * PML4) and depth 3 is the leaf (the paper's "L1" / PTE). The paper's
 * level names are recovered with @ref ap::paperLevelName.
 */

#ifndef AGILEPAGING_BASE_TYPES_HH
#define AGILEPAGING_BASE_TYPES_HH

#include <cstdint>
#include <string>

namespace ap
{

/** A physical or virtual address (host or guest; 64-bit). */
using Addr = std::uint64_t;

/** Simulated cycle count. */
using Cycles = std::uint64_t;

/** Monotonic simulated time in "instructions executed" units. */
using Tick = std::uint64_t;

/** Identifier of a 4 KB physical frame: addr >> 12. */
using FrameId = std::uint64_t;

/** Identifier of a guest process inside a VM. */
using ProcId = std::uint32_t;

/** Number of bits in a 4 KB page offset. */
inline constexpr unsigned kPageShift = 12;

/** Size in bytes of a base (4 KB) page. */
inline constexpr Addr kPageBytes = Addr{1} << kPageShift;

/** Bits of virtual address consumed by one radix level. */
inline constexpr unsigned kLevelBits = 9;

/** Entries per page-table page (512 for x86-64). */
inline constexpr unsigned kPtEntries = 1u << kLevelBits;

/** Number of radix levels in a full walk (x86-64: PML4..PTE). */
inline constexpr unsigned kPtLevels = 4;

/** Size in bytes of a 2 MB large page. */
inline constexpr Addr kLargePageBytes = Addr{1} << (kPageShift + kLevelBits);

/** Size in bytes of a 1 GB huge page. */
inline constexpr Addr kHugePageBytes =
    Addr{1} << (kPageShift + 2 * kLevelBits);

/** Supported translation granules. */
enum class PageSize : std::uint8_t
{
    Size4K,
    Size2M,
    Size1G,
};

/** @return the byte size of a translation granule. */
constexpr Addr
pageBytes(PageSize ps)
{
    switch (ps) {
      case PageSize::Size2M:
        return kLargePageBytes;
      case PageSize::Size1G:
        return kHugePageBytes;
      default:
        return kPageBytes;
    }
}

/** @return log2 of pageBytes(ps); VA >> pageShift(ps) is the VPN. */
constexpr unsigned
pageShift(PageSize ps)
{
    switch (ps) {
      case PageSize::Size2M:
        return kPageShift + kLevelBits;
      case PageSize::Size1G:
        return kPageShift + 2 * kLevelBits;
      default:
        return kPageShift;
    }
}

/**
 * @return the walk depth at which a mapping of the given size terminates.
 * A 4 KB mapping is installed at depth 3 (leaf), a 2 MB mapping at depth 2,
 * a 1 GB mapping at depth 1.
 */
constexpr unsigned
leafDepth(PageSize ps)
{
    switch (ps) {
      case PageSize::Size2M:
        return kPtLevels - 2;
      case PageSize::Size1G:
        return kPtLevels - 3;
      default:
        return kPtLevels - 1;
    }
}

/** @return a short printable name for a page size. */
constexpr const char *
pageSizeName(PageSize ps)
{
    switch (ps) {
      case PageSize::Size2M:
        return "2M";
      case PageSize::Size1G:
        return "1G";
      default:
        return "4K";
    }
}

/**
 * @return the paper's level name for a walk depth (depth 0 == "L4", the
 * root; depth 3 == "L1", the leaf PTE).
 */
inline std::string
paperLevelName(unsigned depth)
{
    return "L" + std::to_string(kPtLevels - depth);
}

/** Memory-virtualization technique selected for a guest process. */
enum class VirtMode : std::uint8_t
{
    /** Unvirtualized baseline: 1D walk of a single page table. */
    Native,
    /** Hardware nested paging: 2D walk of guest + host tables. */
    Nested,
    /** Software shadow paging: 1D walk of a merged shadow table. */
    Shadow,
    /** The paper's contribution: shadow walk with per-entry switch. */
    Agile,
    /** SHSP baseline: whole-process dynamic switching (Wang et al.). */
    Shsp,
    /** Range/segment translation: base+limit segment registers over
     *  contiguous guest VMAs, nested-walk fallback (Teabe et al.). */
    Range,
};

/** @return a short printable name for a virtualization mode. */
constexpr const char *
virtModeName(VirtMode m)
{
    switch (m) {
      case VirtMode::Native:
        return "Native";
      case VirtMode::Nested:
        return "Nested";
      case VirtMode::Shadow:
        return "Shadow";
      case VirtMode::Agile:
        return "Agile";
      case VirtMode::Shsp:
        return "SHSP";
      case VirtMode::Range:
        return "Range";
    }
    return "?";
}

} // namespace ap

#endif // AGILEPAGING_BASE_TYPES_HH
