/**
 * @file
 * Implementation of the statistics package.
 */

#include "base/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace ap::stats
{

namespace
{
/** Render a value: integers plainly, reals with 4 decimals. */
std::string
formatValue(double v)
{
    std::ostringstream os;
    if (std::abs(v - std::round(v)) < 1e-9 && std::abs(v) < 1e15) {
        os << static_cast<long long>(std::llround(v));
    } else {
        os << std::fixed << std::setprecision(4) << v;
    }
    return os.str();
}

/** Render a number as JSON: integers plainly, reals with full
 *  round-trip precision, non-finite values as null (JSON has no
 *  NaN/Inf). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        os << static_cast<long long>(v);
    } else {
        os << std::setprecision(17) << v;
    }
    return os.str();
}

/** Escape a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}
} // namespace

StatBase::StatBase(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc)), group_(group)
{
    ap_assert(group != nullptr, "stat ", name_, " has no group");
    group->stats_.push_back(this);
}

StatBase::~StatBase()
{
    // Symmetric with registration: a stat that dies before its group
    // must not leave a dangling pointer for dump()/resetStats()/
    // findStat() to chase. group_ is null when the group died first
    // (its destructor clears the back-pointers).
    if (group_) {
        auto &v = group_->stats_;
        v.erase(std::remove(v.begin(), v.end(), this), v.end());
    }
}

Scalar::Scalar(StatGroup *group, std::string name, std::string desc)
    : StatBase(group, std::move(name), std::move(desc))
{
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name()) << " "
       << std::right << std::setw(16) << formatValue(value_) << "  # "
       << desc() << "\n";
}

void
Scalar::printJson(std::ostream &os) const
{
    os << "{\"type\": \"scalar\", \"value\": " << jsonNumber(value_)
       << ", \"desc\": \"" << jsonEscape(desc()) << "\"}";
}

Distribution::Distribution(StatGroup *group, std::string name,
                           std::string desc, std::uint64_t min,
                           std::uint64_t max, std::uint64_t bucket_size)
    : StatBase(group, std::move(name), std::move(desc)),
      min_(min),
      max_(max),
      bucket_size_(bucket_size)
{
    ap_assert(bucket_size_ > 0, "bucket size must be positive");
    ap_assert(max_ >= min_, "distribution max < min");
    buckets_.resize((max_ - min_) / bucket_size_ + 1, 0);
}

void
Distribution::sample(std::uint64_t value, std::uint64_t count)
{
    count_ += count;
    sum_ += static_cast<double>(value) * count;
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
    if (value < min_) {
        underflow_ += count;
    } else if (value > max_) {
        overflow_ += count;
    } else {
        buckets_[(value - min_) / bucket_size_] += count;
    }
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name() + ".mean") << " "
       << std::right << std::setw(16) << formatValue(mean()) << "  # "
       << desc() << "\n";
    os << std::left << std::setw(44) << (prefix + name() + ".count") << " "
       << std::right << std::setw(16) << count_ << "\n";
    if (!count_)
        return;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        std::uint64_t lo = min_ + i * bucket_size_;
        os << std::left << std::setw(44)
           << (prefix + name() + "[" + std::to_string(lo) + "]") << " "
           << std::right << std::setw(16) << buckets_[i] << "\n";
    }
    if (underflow_) {
        os << std::left << std::setw(44) << (prefix + name() + ".under")
           << " " << std::right << std::setw(16) << underflow_ << "\n";
    }
    if (overflow_) {
        os << std::left << std::setw(44) << (prefix + name() + ".over")
           << " " << std::right << std::setw(16) << overflow_ << "\n";
    }
}

void
Distribution::printJson(std::ostream &os) const
{
    os << "{\"type\": \"distribution\", \"count\": " << count_
       << ", \"sum\": " << jsonNumber(sum_)
       << ", \"mean\": " << jsonNumber(mean());
    if (count_) {
        os << ", \"min_seen\": " << min_seen_
           << ", \"max_seen\": " << max_seen_;
    }
    os << ", \"underflow\": " << underflow_
       << ", \"overflow\": " << overflow_ << ", \"min\": " << min_
       << ", \"max\": " << max_ << ", \"bucket_size\": " << bucket_size_
       << ", \"buckets\": {";
    bool first = true;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << (min_ + i * bucket_size_) << "\": " << buckets_[i];
    }
    os << "}, \"desc\": \"" << jsonEscape(desc()) << "\"}";
}

void
Distribution::saveValues(Serializer &s) const
{
    s.putU64(underflow_);
    s.putU64(overflow_);
    s.putU64(count_);
    s.putDouble(sum_);
    s.putU64(min_seen_);
    s.putU64(max_seen_);
    s.putPodVector(buckets_);
}

void
Distribution::restoreValues(Deserializer &d)
{
    underflow_ = d.getU64();
    overflow_ = d.getU64();
    count_ = d.getU64();
    sum_ = d.getDouble();
    min_seen_ = d.getU64();
    max_seen_ = d.getU64();
    std::vector<std::uint64_t> buckets;
    d.getPodVector(buckets);
    ap_assert(!d.ok() || buckets.size() == buckets_.size(),
              "distribution ", name(), " bucket count mismatch on restore");
    if (d.ok())
        buckets_ = std::move(buckets);
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
    min_seen_ = ~std::uint64_t{0};
    max_seen_ = 0;
}

Formula::Formula(StatGroup *group, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(group, std::move(name), std::move(desc)), fn_(std::move(fn))
{
}

void
Formula::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name()) << " "
       << std::right << std::setw(16) << formatValue(value()) << "  # "
       << desc() << "\n";
}

void
Formula::printJson(std::ostream &os) const
{
    os << "{\"type\": \"formula\", \"value\": " << jsonNumber(value())
       << ", \"desc\": \"" << jsonEscape(desc()) << "\"}";
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

StatGroup::~StatGroup()
{
    if (parent_) {
        auto &sibs = parent_->children_;
        sibs.erase(std::remove(sibs.begin(), sibs.end(), this), sibs.end());
    }
    // Any stat or child group outliving this group must not try to
    // deregister from (or be dumped through) freed memory.
    for (StatBase *s : stats_)
        s->group_ = nullptr;
    for (StatGroup *g : children_)
        g->parent_ = nullptr;
}

void
StatGroup::dump(std::ostream &os) const
{
    dumpWithPrefix(os, name_.empty() ? "" : name_ + ".");
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\"schema\": \"ap-stats-v1\", ";
    dumpJsonGroup(os);
    os << "}\n";
}

void
StatGroup::dumpJsonGroup(std::ostream &os) const
{
    os << "\"name\": \"" << jsonEscape(name_) << "\", \"stats\": {";
    bool first = true;
    for (const StatBase *s : stats_) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << jsonEscape(s->name()) << "\": ";
        s->printJson(os);
    }
    os << "}, \"groups\": {";
    first = true;
    for (const StatGroup *g : children_) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << jsonEscape(g->name_) << "\": {";
        g->dumpJsonGroup(os);
        os << "}";
    }
    os << "}";
}

void
StatGroup::dumpWithPrefix(std::ostream &os, const std::string &prefix) const
{
    for (const StatBase *s : stats_)
        s->print(os, prefix);
    for (const StatGroup *g : children_)
        g->dumpWithPrefix(os, prefix + g->name_ + ".");
}

void
StatGroup::resetStats()
{
    for (StatBase *s : stats_)
        s->reset();
    for (StatGroup *g : children_)
        g->resetStats();
}

void
StatGroup::saveStatsTree(Serializer &s) const
{
    s.putString(name_);
    s.putU64(stats_.size());
    for (const StatBase *st : stats_) {
        s.putString(st->name());
        st->saveValues(s);
    }
    s.putU64(children_.size());
    for (const StatGroup *g : children_)
        g->saveStatsTree(s);
}

void
StatGroup::restoreStatsTree(Deserializer &d)
{
    if (d.getString() != name_ || d.getU64() != stats_.size()) {
        d.fail();
        return;
    }
    for (StatBase *st : stats_) {
        if (d.getString() != st->name()) {
            d.fail();
            return;
        }
        st->restoreValues(d);
    }
    if (d.getU64() != children_.size()) {
        d.fail();
        return;
    }
    for (StatGroup *g : children_) {
        g->restoreStatsTree(d);
        if (!d.ok())
            return;
    }
}

const StatBase *
StatGroup::findStat(const std::string &name) const
{
    for (const StatBase *s : stats_) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

} // namespace ap::stats
