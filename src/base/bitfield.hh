/**
 * @file
 * Address/bitfield helpers for the 4-level radix walk.
 */

#ifndef AGILEPAGING_BASE_BITFIELD_HH
#define AGILEPAGING_BASE_BITFIELD_HH

#include "base/types.hh"

namespace ap
{

/** @return bits [hi:lo] of @p value (inclusive). */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned hi, unsigned lo)
{
    std::uint64_t mask = (hi >= 63) ? ~std::uint64_t{0}
                                    : ((std::uint64_t{1} << (hi + 1)) - 1);
    return (value & mask) >> lo;
}

/**
 * Radix index of a virtual address at a walk depth.
 *
 * Depth 0 selects the root (paper's L4) entry from VA bits [47:39];
 * depth 3 selects the leaf (paper's L1) entry from VA bits [20:12].
 * This is the paper's index(VA, i) helper (Fig. 2).
 */
constexpr unsigned
ptIndex(Addr va, unsigned depth)
{
    unsigned lo = kPageShift + (kPtLevels - 1 - depth) * kLevelBits;
    return static_cast<unsigned>(bits(va, lo + kLevelBits - 1, lo));
}

/** @return the address truncated to the start of its 4 KB page. */
constexpr Addr
pageBase(Addr a)
{
    return a & ~(kPageBytes - 1);
}

/** @return the address truncated to the start of a granule of size @p ps. */
constexpr Addr
pageBase(Addr a, PageSize ps)
{
    return a & ~(pageBytes(ps) - 1);
}

/** @return the 4 KB frame number of an address. */
constexpr FrameId
frameOf(Addr a)
{
    return a >> kPageShift;
}

/** @return the base address of a 4 KB frame. */
constexpr Addr
frameAddr(FrameId f)
{
    return f << kPageShift;
}

/** @return the offset of an address within its 4 KB page. */
constexpr Addr
pageOffset(Addr a)
{
    return a & (kPageBytes - 1);
}

/**
 * Virtual-address span translated by one entry at a walk depth: the root
 * entry (depth 0) covers 512 GB, the leaf entry (depth 3) covers 4 KB.
 */
constexpr Addr
spanAtDepth(unsigned depth)
{
    return Addr{1} << (kPageShift + (kPtLevels - 1 - depth) * kLevelBits);
}

/** @return @p va truncated to the region one depth-@p depth entry maps. */
constexpr Addr
regionBase(Addr va, unsigned depth)
{
    return va & ~(spanAtDepth(depth) - 1);
}

/** @return true if @p a is aligned to a granule of size @p ps. */
constexpr bool
isAligned(Addr a, PageSize ps)
{
    return (a & (pageBytes(ps) - 1)) == 0;
}

} // namespace ap

#endif // AGILEPAGING_BASE_BITFIELD_HH
