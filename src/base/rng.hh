/**
 * @file
 * Deterministic pseudo-random number generation and the sampling
 * distributions used by the synthetic workload generators.
 *
 * All randomness in the simulator flows through Rng so that every
 * experiment is reproducible from its seed.
 */

#ifndef AGILEPAGING_BASE_RNG_HH
#define AGILEPAGING_BASE_RNG_HH

#include <cstdint>
#include <vector>

#include "base/serialize.hh"

namespace ap
{

/**
 * A small, fast, deterministic generator (xoshiro256**).
 */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return a uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** @return a uniform integer in [lo, hi]. @pre lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability @p p. */
    bool chance(double p);

    /** Snapshot support: the full generator state is the four words. */
    void
    saveState(Serializer &s) const
    {
        for (std::uint64_t w : s_)
            s.putU64(w);
    }

    void
    restoreState(Deserializer &d)
    {
        for (std::uint64_t &w : s_)
            w = d.getU64();
    }

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf-distributed sampler over [0, n). Used to model skewed page
 * popularity (e.g., memcached key accesses).
 *
 * Uses the rejection-inversion method of Hormann and Derflinger, which
 * needs O(1) state regardless of n.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of items (> 0)
     * @param theta skew parameter (> 0, != 1 handled, typical 0.99)
     */
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw one item index in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t size() const { return n_; }

  private:
    double hIntegral(double x) const;
    double hIntegralInverse(double x) const;
    double h(double x) const;

    std::uint64_t n_;
    double theta_;
    double h_integral_x1_;
    double h_integral_n_;
    double s_;
};

/**
 * Samples from an explicit discrete distribution given as weights.
 * Used for choosing among workload event classes.
 */
class WeightedPicker
{
  public:
    explicit WeightedPicker(std::vector<double> weights);

    /** @return index of the chosen weight. */
    std::size_t pick(Rng &rng) const;

    std::size_t size() const { return cumulative_.size(); }

  private:
    std::vector<double> cumulative_;
};

} // namespace ap

#endif // AGILEPAGING_BASE_RNG_HH
