/**
 * @file
 * Debug-flag implementation.
 */

#include "base/debug.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace ap::debug
{

namespace
{
std::array<bool, kNumFlags> flags{};

const char *const kNames[kNumFlags] = {
    "walker", "tlb", "vmm", "shadow", "policy", "guestos", "machine",
};

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}
} // namespace

const char *
flagName(Flag flag)
{
    return kNames[static_cast<std::size_t>(flag)];
}

bool
enabled(Flag flag)
{
    initFromEnvironment();
    return flags[static_cast<std::size_t>(flag)];
}

void
setFlag(Flag flag, bool on)
{
    initFromEnvironment();
    flags[static_cast<std::size_t>(flag)] = on;
}

bool
setFlagsFromString(const std::string &list)
{
    bool all_known = true;
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string name = lower(list.substr(pos, comma - pos));
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "all") {
            flags.fill(true);
            continue;
        }
        bool found = false;
        for (std::size_t i = 0; i < kNumFlags; ++i) {
            if (name == kNames[i]) {
                flags[i] = true;
                found = true;
                break;
            }
        }
        all_known &= found;
    }
    return all_known;
}

void
initFromEnvironment()
{
    // A magic static makes the one-time parse safe to race from
    // parallel experiment workers.
    static const bool parsed = [] {
        if (const char *env = std::getenv("AP_DEBUG")) {
            if (!setFlagsFromString(env))
                ap_warn("AP_DEBUG contains unknown flag names: ", env);
        }
        return true;
    }();
    (void)parsed;
}

void
printLine(Flag flag, const std::string &msg)
{
    std::cerr << flagName(flag) << ": " << msg << "\n";
}

} // namespace ap::debug
