/**
 * @file
 * Guest OS implementation.
 */

#include "guestos/guest_os.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "vmm/guest_pt_space.hh"
#include "walker/backend.hh"

namespace ap
{

namespace
{
/** Mix (fileId, page offset) into a stable nonzero content id. */
std::uint64_t
fileContent(std::uint64_t file_id, std::uint64_t page_offset)
{
    std::uint64_t z = file_id * 0x9e3779b97f4a7c15ULL + page_offset;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z | 1; // never zero
}
} // namespace

GuestOs::GuestOs(stats::StatGroup *parent, PhysMem &host_mem, Vmm *vmm,
                 ShadowMgr *smgr, CoherenceDomain *coh,
                 const GuestOsConfig &cfg)
    : stats::StatGroup("guestos", parent),
      pageFaults(this, "page_faults", "guest page faults serviced"),
      cowBreaks(this, "cow_breaks", "guest COW copies"),
      demandPages(this, "demand_pages", "pages faulted in"),
      thpMappings(this, "thp_mappings", "2M mappings installed"),
      evictions(this, "evictions", "pages evicted under pressure"),
      forks(this, "forks", "processes forked"),
      host_mem_(host_mem),
      vmm_(vmm),
      smgr_(smgr),
      coh_(coh),
      cfg_(cfg)
{
}

GuestOs::~GuestOs()
{
    // Tear processes down explicitly so shadow-manager hooks still see
    // registered processes while their tables die.
    std::vector<ProcId> pids;
    for (auto &[pid, p] : procs_) {
        if (p->alive)
            pids.push_back(pid);
    }
    for (ProcId pid : pids)
        reapProcess(pid);
}

ProcId
GuestOs::createProcess(VirtMode mode)
{
    ap_assert((mode == VirtMode::Native) == isNative(),
              "mode/VMM mismatch: native processes need a native OS");
    ProcId pid = next_pid_++;
    auto p = std::make_unique<GuestProcess>();
    p->pid = pid;
    p->mode = mode;

    if (isNative()) {
        p->ptSpace =
            std::make_unique<HostPtSpace>(host_mem_, TableOwner::NativePt);
        p->pt = std::make_unique<RadixPageTable>(*p->ptSpace, "nPT");
        p->ctx.mode = VirtMode::Native;
        p->ctx.asid = pid;
        p->ctx.nativeRoot = p->pt->root();
    } else {
        auto space = std::make_unique<GuestPtSpace>(*vmm_);
        GuestPtSpace *space_raw = space.get();
        p->ptSpace = std::move(space);
        p->pt = std::make_unique<RadixPageTable>(*p->ptSpace, "gPT");
        space_raw->onFree = [this, pid](FrameId gframe) {
            if (smgr_ && smgr_->hasProcess(pid))
                smgr_->onGptPageFree(pid, gframe);
        };
        p->ctx.mode = mode;
        p->ctx.asid = pid;
        p->ctx.gptRoot = p->pt->root();
        p->ctx.gptRootBacking = vmm_->ensurePtBacked(p->pt->root());
        p->ctx.hptRoot = vmm_->hostPtRoot();
        if (backendTraits(mode).usesShadowMgr) {
            ap_assert(smgr_, "shadow modes need a shadow manager");
            smgr_->registerProcess(pid, p->pt.get(), p->pt->root(),
                                   mode == VirtMode::Agile);
            TranslationContext &sctx = smgr_->context(pid);
            sctx.mode = mode;
        }
    }
    procs_[pid] = std::move(p);
    return pid;
}

void
GuestOs::exitProcess(ProcId pid)
{
    GuestProcess &p = process(pid);
    ap_assert(p.alive, "double exit");
    // Release data pages.
    std::vector<std::pair<Addr, Addr>> regions;
    p.as.forEach([&](const Vma &vma) {
        regions.emplace_back(vma.base, vma.length);
    });
    for (auto [base, len] : regions)
        munmap(pid, base, len);
    // Destroy the page table while shadow hooks are still wired.
    p.pt.reset();
    if (smgr_ && smgr_->hasProcess(pid))
        smgr_->unregisterProcess(pid);
    if (coh_)
        coh_->flushAsid(pid, CoherenceCause::Exit);
    p.alive = false;
}

void
GuestOs::reapProcess(ProcId pid)
{
    GuestProcess &p = process(pid);
    ap_assert(p.alive, "double exit");
    // One DFS over the table's terminals frees exactly the frames the
    // per-page munmap walk would (in the same ascending-VA order), but
    // without per-page lookups, PTE invalidations, leaf-table pruning
    // scans, or shadow notifications — the whole-table destruction and
    // the ASID flushes below subsume those.
    if (p.pt) {
        p.pt->forEachTerminal(
            [&](Addr, const Pte &pte, unsigned depth) {
                if (pte.switching)
                    return; // table pointer, not a mapping
                std::uint64_t frames = std::uint64_t{1}
                                       << (kLevelBits *
                                           (kPtLevels - 1 - depth));
                refDecAndMaybeFree(pte.pfn, frames);
            });
        p.pt.reset();
    }
    p.as.clear();
    if (smgr_ && smgr_->hasProcess(pid))
        smgr_->unregisterProcess(pid);
    if (coh_)
        coh_->flushAsidUncharged(pid);
    p.alive = false;
}

GuestProcess &
GuestOs::process(ProcId pid)
{
    auto it = procs_.find(pid);
    ap_assert(it != procs_.end(), "unknown pid ", pid);
    return *it->second;
}

void
GuestOs::saveState(Serializer &s) const
{
    s.putMarker(0x20534f47); // "GOS "
    s.putU32(next_pid_);
    s.putU64(anon_content_seq_);
    s.putU64(guest_cycles_);
    // frame_refs_ is lookup-only, so it may stay unordered in memory,
    // but its on-disk order must not depend on hashing.
    std::map<FrameId, std::uint32_t> refs(frame_refs_.begin(),
                                          frame_refs_.end());
    s.putU64(refs.size());
    for (const auto &[frame, count] : refs) {
        s.putU64(frame);
        s.putU32(count);
    }
    // Ascending pid order: replaying the original insert sequence
    // reproduces procs_'s iteration order (livePids) exactly.
    std::map<ProcId, const GuestProcess *> sorted;
    for (const auto &[pid, p] : procs_)
        sorted.emplace(pid, p.get());
    s.putU64(sorted.size());
    for (const auto &[pid, p] : sorted) {
        s.putU32(pid);
        s.putBool(p->alive);
        s.putU8(static_cast<std::uint8_t>(p->mode));
        s.putU64(p->clockHand);
        s.putRaw(&p->ctx, sizeof(p->ctx));
        p->as.saveState(s);
        s.putBool(p->pt != nullptr);
        if (p->pt) {
            s.putU64(p->pt->root());
            s.putU64(p->pt->pageCount());
        }
    }
}

void
GuestOs::abandonForRestore()
{
    // Disown before destroying: the old trees' pages revert with the
    // arena when PhysMem restores, so freeing them here would double
    // book frames the image is about to claim.
    for (auto &[pid, p] : procs_) {
        (void)pid;
        if (p->pt)
            p->pt->disown();
    }
    procs_.clear();
    frame_refs_.clear();
}

void
GuestOs::restoreState(Deserializer &d)
{
    d.checkMarker(0x20534f47);
    // Dying process shells must not run exit paths against the
    // restored image; drop them wholesale. Machine::restoreState
    // already abandoned any prior run's processes against the old
    // memory, so this clear only sees fresh (or already-disowned)
    // state.
    procs_.clear();
    next_pid_ = d.getU32();
    anon_content_seq_ = d.getU64();
    guest_cycles_ = d.getU64();
    frame_refs_.clear();
    std::uint64_t nrefs = d.getU64();
    for (std::uint64_t i = 0; i < nrefs && d.ok(); ++i) {
        FrameId frame = d.getU64();
        frame_refs_[frame] = d.getU32();
    }
    std::uint64_t nprocs = d.getU64();
    for (std::uint64_t i = 0; i < nprocs && d.ok(); ++i) {
        ProcId pid = d.getU32();
        auto p = std::make_unique<GuestProcess>();
        p->pid = pid;
        p->alive = d.getBool();
        p->mode = static_cast<VirtMode>(d.getU8());
        p->clockHand = d.getU64();
        d.getRaw(&p->ctx, sizeof(p->ctx));
        p->as.restoreState(d);
        bool has_pt = d.getBool();
        if (has_pt) {
            FrameId root = d.getU64();
            std::uint64_t pages = d.getU64();
            if (isNative()) {
                p->ptSpace = std::make_unique<HostPtSpace>(
                    host_mem_, TableOwner::NativePt);
                p->pt = std::make_unique<RadixPageTable>(
                    *p->ptSpace, "nPT", RadixPageTable::ForRestore{});
            } else {
                auto space = std::make_unique<GuestPtSpace>(*vmm_);
                space->onFree = [this, pid](FrameId gframe) {
                    if (smgr_ && smgr_->hasProcess(pid))
                        smgr_->onGptPageFree(pid, gframe);
                };
                p->ptSpace = std::move(space);
                p->pt = std::make_unique<RadixPageTable>(
                    *p->ptSpace, "gPT", RadixPageTable::ForRestore{});
            }
            p->pt->restoreState(root, pages);
        }
        procs_[pid] = std::move(p);
    }
}

bool
GuestOs::hasProcess(ProcId pid) const
{
    auto it = procs_.find(pid);
    return it != procs_.end() && it->second->alive;
}

TranslationContext &
GuestOs::context(ProcId pid)
{
    GuestProcess &p = process(pid);
    if (smgr_ && smgr_->hasProcess(pid))
        return smgr_->context(pid);
    return p.ctx;
}

void
GuestOs::notifyPtWrite(GuestProcess &p, Addr va, unsigned depth,
                       bool ad_only)
{
    if (isNative())
        return;
    if (onAnyGptWrite)
        onAnyGptWrite(p.pid, va, depth);
    if (!smgr_ || !smgr_->hasProcess(p.pid))
        return;
    GptWriteOutcome out = smgr_->onGptWrite(p.pid, va, depth, ad_only);
    if (out.trapped && onMediatedGptWrite)
        onMediatedGptWrite(p.pid, va, depth, out);
}

void
GuestOs::shootdown(GuestProcess &p, Addr base, Addr len,
                   CoherenceCause cause)
{
    if (coh_)
        coh_->flushRange(base, len, p.pid, cause);
    if (smgr_ && smgr_->hasProcess(p.pid)) {
        if (len <= kLargePageBytes) {
            // INVLPG-style targeted invalidation: only the affected
            // unsynced PT page resyncs (KVM's invlpg path).
            smgr_->onGuestInvlpgRange(p.pid, base, len);
        } else {
            smgr_->onGuestTlbFlush(p.pid, false);
        }
    }
}

FrameId
GuestOs::allocData(std::uint64_t frames)
{
    if (isNative()) {
        return frames == 1 ? host_mem_.allocData(0)
                           : host_mem_.allocDataContiguous(frames);
    }
    return frames == 1 ? vmm_->allocGuestDataFrame()
                       : vmm_->allocGuestDataFrames(frames);
}

void
GuestOs::setPageContent(const Vma &vma, Addr va, FrameId frame_base,
                        std::uint64_t frames)
{
    auto set = [&](FrameId frame, std::uint64_t content) {
        if (isNative()) {
            if (host_mem_.kind(frame) == FrameKind::Data)
                host_mem_.setContentId(frame, content);
        } else {
            vmm_->setContent(frame, content);
        }
    };
    if (vma.kind == VmaKind::File) {
        std::uint64_t first = (pageBase(va) - vma.base) / kPageBytes;
        for (std::uint64_t i = 0; i < frames; ++i)
            set(frame_base + i, fileContent(vma.fileId, first + i));
    } else {
        // Anonymous pages get unique (non-dedupable) content.
        set(frame_base, (anon_content_seq_++ << 1) |
                            (std::uint64_t{1} << 62));
    }
}

void
GuestOs::refInc(FrameId base)
{
    auto [it, fresh] = frame_refs_.try_emplace(base, 1u);
    ++it->second;
}

bool
GuestOs::refDecAndMaybeFree(FrameId base, std::uint64_t frames)
{
    auto it = frame_refs_.find(base);
    if (it != frame_refs_.end()) {
        if (--it->second > 0)
            return false;
        frame_refs_.erase(it);
    }
    for (std::uint64_t i = 0; i < frames; ++i) {
        if (isNative()) {
            host_mem_.free(base + i);
        } else {
            vmm_->freeGuestDataFrame(base + i);
        }
    }
    return true;
}

Addr
GuestOs::mmap(ProcId pid, Addr length, bool writable, VmaKind kind,
              std::uint64_t file_id)
{
    GuestProcess &p = process(pid);
    guest_cycles_ += cfg_.syscallCost;
    // Huge-page alignment only pays off for mappings that can hold
    // one; small mappings pack normally (as Linux does).
    Addr align = (cfg_.pageSize != PageSize::Size4K &&
                  length >= pageBytes(cfg_.pageSize))
                     ? pageBytes(cfg_.pageSize)
                     : kPageBytes;
    length = (length + kPageBytes - 1) & ~(kPageBytes - 1);
    return p.as.addAnywhere(length, align, writable, kind, file_id);
}

bool
GuestOs::mmapFixed(ProcId pid, Addr base, Addr length, bool writable,
                   VmaKind kind, std::uint64_t file_id)
{
    GuestProcess &p = process(pid);
    guest_cycles_ += cfg_.syscallCost;
    length = (length + kPageBytes - 1) & ~(kPageBytes - 1);
    Vma vma;
    vma.base = base;
    vma.length = length;
    vma.writable = writable;
    vma.kind = kind;
    vma.fileId = file_id;
    return p.as.add(vma);
}

void
GuestOs::munmap(ProcId pid, Addr base, Addr length)
{
    GuestProcess &p = process(pid);
    guest_cycles_ += cfg_.syscallCost;
    Addr end = base + length;

    // The shootdown must cover every translation actually torn down,
    // not just [base, base+length): a large mapping straddling either
    // boundary is evicted whole, and finer-granule (4K) TLB/PWC
    // entries under it would otherwise survive outside the requested
    // window as stale translations.
    Addr flush_base = base;
    Addr flush_end = end;

    for (Addr va = base; va < end;) {
        auto m = p.pt->lookup(va);
        if (!m) {
            va += kPageBytes;
            continue;
        }
        Addr span = pageBytes(m->size);
        Addr map_base = regionBase(va, m->depth);
        // Partial unmap of a large page: evict the whole mapping (the
        // kernel would split; the fault path repopulates the rest).
        p.pt->unmap(map_base);
        notifyPtWrite(p, map_base, m->depth);
        freeMapping(map_base, *m);
        guest_cycles_ += cfg_.perPageCost;
        flush_base = std::min(flush_base, map_base);
        flush_end = std::max(flush_end, map_base + span);
        va = map_base + span;
    }

    // Prune leaf PT pages for fully unmapped 2 MB regions so PT-page
    // churn does not leak guest PT frames.
    Addr first_region = regionBase(base, kPtLevels - 2);
    for (Addr r = first_region; r < end; r += kLargePageBytes) {
        if (r < base && base - r > 0 && p.as.find(r))
            continue; // region partially still mapped below base
        const Pte *e = p.pt->entry(r, kPtLevels - 2);
        if (!e || !e->valid || e->pageSize)
            continue;
        // Check the leaf table is empty before pruning.
        bool empty = true;
        for (Addr va = r; va < r + kLargePageBytes; va += kPageBytes) {
            if (p.pt->lookup(va)) {
                empty = false;
                break;
            }
        }
        if (empty) {
            p.pt->invalidateEntry(r, kPtLevels - 2);
            notifyPtWrite(p, r, kPtLevels - 2);
            // Partial translations through the pruned leaf table cover
            // its whole 2 MB region.
            flush_base = std::min(flush_base, r);
            flush_end = std::max(flush_end, r + kLargePageBytes);
        }
    }

    p.as.remove(base, length);
    shootdown(p, flush_base, flush_end - flush_base,
              CoherenceCause::Munmap);
}

void
GuestOs::freeMapping(Addr va, const PtMapping &m)
{
    (void)va;
    std::uint64_t frames = pageBytes(m.size) / kPageBytes;
    refDecAndMaybeFree(m.pfn, frames);
}

bool
GuestOs::demandPage(GuestProcess &p, const Vma &vma, Addr va,
                    bool is_write)
{
    // Try a huge-page mapping (2 MB THP or explicit 1 GB pages) when
    // configured and the whole aligned region lies inside one VMA.
    if (cfg_.pageSize != PageSize::Size4K) {
        Addr region = pageBase(va, cfg_.pageSize);
        std::uint64_t frames = pageBytes(cfg_.pageSize) / kPageBytes;
        if (vma.contains(region) &&
            vma.contains(region + pageBytes(cfg_.pageSize) - 1)) {
            FrameId base = allocData(frames);
            if (base != 0) {
                Pte *pte = p.pt->map(region, base, cfg_.pageSize,
                                     vma.writable);
                if (!pte) {
                    refDecAndMaybeFree(base, frames);
                    return false;
                }
                // The kernel installs the PTE accessed (and dirty for a
                // write fault), so shadow fills can grant write access
                // immediately.
                pte->accessed = true;
                pte->dirty = is_write && vma.writable;
                setPageContent(vma, region, base, frames);
                notifyPtWrite(p, region, leafDepth(cfg_.pageSize));
                ++thpMappings;
                ++demandPages;
                return true;
            }
            // Fall through to a 4 KB mapping on fragmentation.
        }
    }
    FrameId frame = allocData(1);
    if (frame == 0)
        return false;
    Pte *pte =
        p.pt->map(pageBase(va), frame, PageSize::Size4K, vma.writable);
    if (!pte) {
        refDecAndMaybeFree(frame, 1);
        return false;
    }
    pte->accessed = true;
    pte->dirty = is_write && vma.writable;
    setPageContent(vma, pageBase(va), frame, 1);
    notifyPtWrite(p, pageBase(va), kPtLevels - 1);
    ++demandPages;
    return true;
}

bool
GuestOs::handlePageFault(ProcId pid, Addr va, bool is_write)
{
    GuestProcess &p = process(pid);
    const Vma *vma = p.as.find(va);
    if (!vma)
        return false;
    ++pageFaults;
    guest_cycles_ += cfg_.pageFaultCost;

    auto m = p.pt->lookup(va);
    if (!m)
        return demandPage(p, *vma, va, is_write);
    if (is_write && !m->pte.writable && vma->writable)
        return handleCowWrite(pid, va);
    // Spurious (e.g. raced with another fixup): nothing to do.
    return true;
}

bool
GuestOs::handleCowWrite(ProcId pid, Addr va)
{
    GuestProcess &p = process(pid);
    const Vma *vma = p.as.find(va);
    if (!vma || !vma->writable)
        return false;
    auto m = p.pt->lookup(va);
    if (!m)
        return false;
    if (m->pte.writable)
        return true; // already broken by the other side

    std::uint64_t frames = pageBytes(m->size) / kPageBytes;
    Addr map_base = regionBase(va, m->depth);
    ++cowBreaks;
    guest_cycles_ += cfg_.cowCopyCost * frames;

    auto ref_it = frame_refs_.find(m->pfn);
    bool shared = ref_it != frame_refs_.end() && ref_it->second > 1;
    if (!shared) {
        // Sole owner: just restore write permission in place.
        Pte *pte = p.pt->entry(map_base, m->depth);
        pte->writable = true;
        notifyPtWrite(p, map_base, m->depth);
        shootdown(p, map_base, pageBytes(m->size),
                  CoherenceCause::Cow);
        return true;
    }

    FrameId fresh = allocData(frames);
    if (fresh == 0)
        return false;
    // Copy content ids (private copies are distinct pages again; keep
    // file identity so future dedup can re-merge).
    for (std::uint64_t i = 0; i < frames; ++i) {
        std::uint64_t content = 0;
        if (isNative()) {
            content = host_mem_.contentId(m->pfn + i);
            host_mem_.setContentId(fresh + i, content);
        } else if (FrameId h = vmm_->backing(m->pfn + i)) {
            content = host_mem_.contentId(h);
            vmm_->setContent(fresh + i, content);
        }
    }
    refDecAndMaybeFree(m->pfn, frames);
    p.pt->map(map_base, fresh, m->size, true);
    notifyPtWrite(p, map_base, m->depth);
    shootdown(p, map_base, pageBytes(m->size), CoherenceCause::Cow);
    return true;
}

ProcId
GuestOs::fork(ProcId parent_pid)
{
    GuestProcess &parent = process(parent_pid);
    ProcId child_pid = createProcess(parent.mode);
    GuestProcess &child = process(child_pid);
    ++forks;
    guest_cycles_ += cfg_.syscallCost;

    parent.as.forEach([&](const Vma &vma) {
        bool ok = child.as.add(vma);
        ap_assert(ok, "fork: child VMA collision");
    });

    // Share every present mapping copy-on-write.
    struct Item
    {
        Addr va;
        Pte pte;
        unsigned depth;
    };
    std::vector<Item> items;
    parent.pt->forEachTerminal([&](Addr va, const Pte &pte, unsigned d) {
        items.push_back(Item{va, pte, d});
    });
    for (const Item &it : items) {
        guest_cycles_ += cfg_.perPageCost;
        PageSize size = it.depth == kPtLevels - 1   ? PageSize::Size4K
                        : it.depth == kPtLevels - 2 ? PageSize::Size2M
                                                    : PageSize::Size1G;
        if (it.pte.writable) {
            Pte *ppte = parent.pt->entry(it.va, it.depth);
            ppte->writable = false;
            notifyPtWrite(parent, it.va, it.depth);
        }
        if (!child.pt->map(it.va, it.pte.pfn, size, false)) {
            exitProcess(child_pid);
            return 0;
        }
        notifyPtWrite(child, it.va, it.depth);
        refInc(it.pte.pfn);
    }

    // The parent's mappings changed permission: full flush, and every
    // vCPU the parent may have run on must drop its cached writable
    // translations before the child can observe the shared frames.
    if (coh_)
        coh_->flushAsid(parent_pid, CoherenceCause::Fork);
    if (smgr_ && smgr_->hasProcess(parent_pid))
        smgr_->onGuestTlbFlush(parent_pid, true);
    return child_pid;
}

std::uint64_t
GuestOs::reclaimScan(ProcId pid, std::uint64_t max_pages)
{
    GuestProcess &p = process(pid);
    struct Item
    {
        Addr va;
        unsigned depth;
        bool accessed;
    };
    bool is_shadowed = smgr_ && smgr_->hasProcess(pid);
    // Rotating clock hand: collect mapped pages after the hand,
    // wrapping once, until the scan budget (in 4 KB pages — a 2 MB
    // mapping costs 512 budget units) is spent.
    std::vector<Item> items;
    std::vector<Item> before_hand;
    std::uint64_t budget_after = 0, budget_before = 0;
    p.pt->forEachTerminal([&](Addr va, const Pte &pte, unsigned d) {
        if (pte.switching)
            return;
        std::uint64_t weight =
            spanAtDepth(d) / kPageBytes; // 1 for 4K, 512 for 2M, ...
        auto &bucket = va >= p.clockHand ? items : before_hand;
        auto &budget = va >= p.clockHand ? budget_after : budget_before;
        if (budget >= max_pages)
            return;
        budget += weight;
        // Under shadow paging the hardware records references in
        // the shadow table; the VMM surfaces them to the guest.
        bool accessed = pte.accessed;
        if (!accessed && is_shadowed)
            accessed = smgr_->consumeShadowAccessed(pid, va);
        bucket.push_back(Item{va, d, accessed});
    });
    for (const Item &it : before_hand) {
        if (budget_after >= max_pages)
            break;
        budget_after += spanAtDepth(it.depth) / kPageBytes;
        items.push_back(it);
    }
    p.clockHand = items.empty() ? 0 : items.back().va + kPageBytes;

    std::uint64_t evicted = 0;
    for (const Item &it : items) {
        guest_cycles_ += cfg_.perPageCost;
        if (it.accessed) {
            // Clear the reference bit — a PT write the VMM mediates in
            // shadow mode (the Section V memory-pressure scenario).
            Pte *pte = p.pt->entry(it.va, it.depth);
            if (pte && pte->valid) {
                pte->accessed = false;
                notifyPtWrite(p, it.va, it.depth, /*ad_only=*/true);
            }
        } else {
            auto m = p.pt->lookup(it.va);
            if (!m)
                continue;
            p.pt->unmap(it.va);
            notifyPtWrite(p, it.va, it.depth);
            freeMapping(it.va, *m);
            ++evicted;
        }
    }
    if (!items.empty())
        shootdown(p, 0, Addr{1} << 47, CoherenceCause::Reclaim);
    evictions += evicted;
    return evicted;
}

std::vector<ProcId>
GuestOs::livePids() const
{
    std::vector<ProcId> pids;
    for (const auto &[pid, p] : procs_) {
        if (p->alive)
            pids.push_back(pid);
    }
    return pids;
}

Addr
GuestOs::randomMappedVa(ProcId pid, Rng &rng)
{
    GuestProcess &p = process(pid);
    Addr total = p.as.mappedBytes();
    if (total == 0)
        return 0;
    Addr target = rng.nextBelow(total);
    Addr result = 0;
    p.as.forEach([&](const Vma &vma) {
        if (result)
            return;
        if (target < vma.length) {
            result = vma.base + pageBase(target);
        } else {
            target -= vma.length;
        }
    });
    return result;
}

bool
GuestOs::guestMappingWritable(ProcId pid, Addr va)
{
    GuestProcess &p = process(pid);
    auto m = p.pt->lookup(va);
    return m && m->pte.writable;
}

bool
GuestOs::vmaWritable(ProcId pid, Addr va)
{
    GuestProcess &p = process(pid);
    const Vma *vma = p.as.find(va);
    return vma && vma->writable;
}

FrameId
GuestOs::leafFrame(ProcId pid, Addr va)
{
    GuestProcess &p = process(pid);
    auto m = p.pt->lookup(va);
    if (!m)
        return 0;
    std::uint64_t frames = pageBytes(m->size) / kPageBytes;
    return m->pfn + (frameOf(va) % frames);
}

} // namespace ap
