/**
 * @file
 * The guest operating system model.
 *
 * Implements the kernel behaviours the paper's evaluation exercises:
 * demand paging, mmap/munmap with page-table construction and pruning,
 * fork with copy-on-write, transparent huge pages (2 MB), reference-
 * bit scanning under memory pressure (clock reclaim), and TLB
 * shootdowns after PT updates. Every page-table store is routed
 * through the shadow manager's write-interception hook, so the cost
 * difference between nested mode (direct stores) and shadow mode
 * (mediated stores) emerges naturally.
 *
 * The same class also models the *unvirtualized* OS: with a null VMM
 * the process page tables live directly in host memory and translation
 * runs in native mode — the paper's "Base Native" configuration.
 */

#ifndef AGILEPAGING_GUESTOS_GUEST_OS_HH
#define AGILEPAGING_GUESTOS_GUEST_OS_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/serialize.hh"
#include "base/stats.hh"
#include "base/rng.hh"
#include "base/types.hh"
#include "guestos/vma.hh"
#include "mem/page_table.hh"
#include "mem/phys_mem.hh"
#include "tlb/coherence.hh"
#include "vmm/shadow_mgr.hh"
#include "vmm/vmm.hh"
#include "walker/walker.hh"

namespace ap
{

/** Guest-kernel cost and behaviour knobs. */
struct GuestOsConfig
{
    /** Preferred mapping granule; 2 MB enables THP-style mappings. */
    PageSize pageSize = PageSize::Size4K;
    /** Guest kernel cycles to service a page fault (all modes). */
    Cycles pageFaultCost = 800;
    /** Guest kernel cycles to copy one 4 KB page on COW. */
    Cycles cowCopyCost = 1200;
    /** Base guest cycles of an mmap/munmap syscall. */
    Cycles syscallCost = 150;
    /** Guest cycles per page unmapped / scanned. */
    Cycles perPageCost = 20;
};

/** One guest process. */
struct GuestProcess
{
    ProcId pid = 0;
    VirtMode mode = VirtMode::Native;
    std::unique_ptr<PtSpace> ptSpace;
    std::unique_ptr<RadixPageTable> pt;
    AddressSpace as;
    /** Translation registers when the process is not shadow-managed
     *  (native and pure nested modes). */
    TranslationContext ctx;
    /** Clock-algorithm hand: VA where the next reclaim scan resumes. */
    Addr clockHand = 0;
    bool alive = true;
};

/**
 * The kernel.
 */
class GuestOs : public stats::StatGroup
{
  public:
    /**
     * @param vmm  null for the unvirtualized (native) configuration
     * @param smgr null unless shadow-based modes are in use
     * @param coh  coherence domain to shoot down through on PT updates
     *             (nullable; reaches every vCPU's TLB/PWC stack)
     */
    GuestOs(stats::StatGroup *parent, PhysMem &host_mem, Vmm *vmm,
            ShadowMgr *smgr, CoherenceDomain *coh,
            const GuestOsConfig &cfg);
    ~GuestOs();

    /**
     * Invoked after every mediated (trapped) guest PT write; the
     * machine wires this to the agile policy.
     */
    std::function<void(ProcId, Addr, unsigned, const GptWriteOutcome &)>
        onMediatedGptWrite;

    /** Invoked on *every* guest PT write of a virtualized process
     *  (mediated or not) — feeds the SHSP projection model. */
    std::function<void(ProcId, Addr, unsigned)> onAnyGptWrite;

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /** Create a process running under @p mode. */
    ProcId createProcess(VirtMode mode);

    /** Terminate: unmap everything, free the page table. */
    void exitProcess(ProcId pid);

    /**
     * Terminate without simulating the teardown. Frees the same frames
     * and flushes the same translation state as exitProcess, but in
     * bulk — one pass over the page table's terminals instead of a
     * per-page munmap of every VMA — and charges nothing. Only valid
     * once the process's counters no longer matter (after the
     * measurement delta has been taken or during machine teardown);
     * mid-run process churn must keep using exitProcess so its
     * simulated cost lands in the results.
     */
    void reapProcess(ProcId pid);

    GuestProcess &process(ProcId pid);
    bool hasProcess(ProcId pid) const;

    /** Translation registers for the walker (shadow-managed processes
     *  get the shadow manager's context). */
    TranslationContext &context(ProcId pid);

    /**
     * Clone @p parent: VMAs copied, every present mapping shared
     * copy-on-write (read-only in both tables), TLB flushed.
     * @return the child pid, or 0 on resource exhaustion.
     */
    ProcId fork(ProcId parent);

    // ------------------------------------------------------------------
    // Memory syscalls
    // ------------------------------------------------------------------

    /** Map @p length bytes anywhere. @return base address or 0. */
    Addr mmap(ProcId pid, Addr length, bool writable, VmaKind kind,
              std::uint64_t file_id = 0);

    /** Map at a fixed base (workload-controlled reuse). */
    bool mmapFixed(ProcId pid, Addr base, Addr length, bool writable,
                   VmaKind kind, std::uint64_t file_id = 0);

    /** Unmap [base, base+length): clears PT entries, prunes empty
     *  leaf PT pages, flushes stale translations. */
    void munmap(ProcId pid, Addr base, Addr length);

    // ------------------------------------------------------------------
    // Fault handling
    // ------------------------------------------------------------------

    /**
     * Handle a page fault at @p va (demand paging or fault-in after
     * COW). @return false if @p va is not mapped by any VMA.
     */
    bool handlePageFault(ProcId pid, Addr va, bool is_write);

    /**
     * Break guest-level copy-on-write at @p va: private copy, writable
     * mapping, targeted TLB shootdown.
     * @return false if @p va has no COW-able mapping.
     */
    bool handleCowWrite(ProcId pid, Addr va);

    // ------------------------------------------------------------------
    // Memory pressure (Section V)
    // ------------------------------------------------------------------

    /**
     * Clock-algorithm scan: visit up to @p max_pages mapped pages;
     * referenced pages get their accessed bit cleared (a PT write!),
     * unreferenced ones are evicted.
     * @return pages evicted.
     */
    std::uint64_t reclaimScan(ProcId pid, std::uint64_t max_pages);

    // ------------------------------------------------------------------
    // Queries used by the machine's fault decision tree
    // ------------------------------------------------------------------

    /** Guest-stage write permission of the current mapping of @p va. */
    bool guestMappingWritable(ProcId pid, Addr va);
    /** VMA-level write permission. */
    bool vmaWritable(ProcId pid, Addr va);
    /** Guest frame (host frame when native) mapping @p va's page. */
    FrameId leafFrame(ProcId pid, Addr va);

    bool isNative() const { return vmm_ == nullptr; }

    /** Pids of every live process. */
    std::vector<ProcId> livePids() const;

    /** A random currently-mapped virtual address of @p pid (length-
     *  weighted across VMAs); 0 if nothing is mapped. */
    Addr randomMappedVa(ProcId pid, Rng &rng);

    /** Cycles spent inside the guest kernel (identical across modes;
     *  accounted into ideal execution time). */
    Cycles guestCycles() const { return guest_cycles_; }

    /**
     * Snapshot support. Processes are rebuilt with createProcess's
     * exact wiring (PT space, shadow free hook) but without
     * re-registering with the shadow manager — the manager restores
     * its own per-process state, including the guest-table pointers,
     * through its resolver. Restore the VMM/PhysMem first.
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

    /**
     * Drop every process without freeing a frame, in preparation for
     * restoring a snapshot into a machine that has already run: the
     * page-table trees are disowned (host memory is about to be
     * rebuilt wholesale from the image, which reverts their pages with
     * it). A fresh machine has nothing to drop, so this is a no-op
     * there.
     */
    void abandonForRestore();

    stats::Scalar pageFaults;
    stats::Scalar cowBreaks;
    stats::Scalar demandPages;
    stats::Scalar thpMappings;
    stats::Scalar evictions;
    stats::Scalar forks;

  private:
    /** Allocate @p frames data frames (guest frames, or host when
     *  native); contiguous/aligned when frames > 1. @return base. */
    FrameId allocData(std::uint64_t frames);
    void freeMapping(Addr va, const PtMapping &m);
    void setPageContent(const Vma &vma, Addr va, FrameId frame_base,
                        std::uint64_t frames);

    /** Route a PT store through shadow interception + policy hook. */
    void notifyPtWrite(GuestProcess &p, Addr va, unsigned depth,
                       bool ad_only = false);

    /** Guest-visible TLB shootdown of a range (with resync trap),
     *  broadcast to every vCPU and attributed to @p cause. */
    void shootdown(GuestProcess &p, Addr base, Addr len,
                   CoherenceCause cause);

    void refInc(FrameId base);
    /** @return true if the last reference died and frames were freed. */
    bool refDecAndMaybeFree(FrameId base, std::uint64_t frames);

    bool demandPage(GuestProcess &p, const Vma &vma, Addr va,
                    bool is_write);

    PhysMem &host_mem_;
    Vmm *vmm_;
    ShadowMgr *smgr_;
    CoherenceDomain *coh_;
    GuestOsConfig cfg_;

    ProcId next_pid_ = 1;
    std::unordered_map<ProcId, std::unique_ptr<GuestProcess>> procs_;
    /** COW sharing refcounts, keyed by mapping base frame; absent = 1. */
    std::unordered_map<FrameId, std::uint32_t> frame_refs_;
    std::uint64_t anon_content_seq_ = 1;
    Cycles guest_cycles_ = 0;
};

} // namespace ap

#endif // AGILEPAGING_GUESTOS_GUEST_OS_HH
