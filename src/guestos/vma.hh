/**
 * @file
 * Virtual memory areas and the per-process address-space map.
 */

#ifndef AGILEPAGING_GUESTOS_VMA_HH
#define AGILEPAGING_GUESTOS_VMA_HH

#include <cstdint>
#include <map>
#include <optional>

#include "base/serialize.hh"
#include "base/types.hh"

namespace ap
{

/** What a mapping represents (drives page content and reuse). */
enum class VmaKind : std::uint8_t
{
    /** Anonymous memory: unique content per page. */
    Anon,
    /** File-backed: content determined by (fileId, offset) — pages of
     *  the same file region deduplicate across processes. */
    File,
};

/** One mapped region. */
struct Vma
{
    Addr base = 0;
    Addr length = 0;
    bool writable = true;
    VmaKind kind = VmaKind::Anon;
    /** File identity for File mappings (content dedup key). */
    std::uint64_t fileId = 0;

    Addr end() const { return base + length; }
    bool contains(Addr va) const { return va >= base && va < end(); }
};

/**
 * Sorted, non-overlapping set of VMAs plus a simple top-down free-area
 * allocator.
 */
class AddressSpace
{
  public:
    /** mmap hint region start. */
    static constexpr Addr kMmapBase = 0x10000000;

    /**
     * Insert a VMA at a fixed base. @return false on overlap.
     */
    bool add(const Vma &vma);

    /**
     * Choose a free base for @p length bytes (aligned to @p align) and
     * insert. @return the base, or 0 if the VA space is exhausted.
     */
    Addr addAnywhere(Addr length, Addr align, bool writable, VmaKind kind,
                     std::uint64_t file_id = 0);

    /**
     * Remove [base, base+length). Splits partially covered VMAs.
     * @return true if anything was removed.
     */
    bool remove(Addr base, Addr length);

    /** VMA containing @p va, if any. */
    const Vma *find(Addr va) const;

    /** Drop every VMA (process teardown). */
    void clear() { vmas_.clear(); }

    std::size_t count() const { return vmas_.size(); }

    /** Total mapped bytes. */
    Addr mappedBytes() const;

    /** Visit every VMA in address order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[base, vma] : vmas_)
            fn(vma);
    }

    /** Snapshot support. */
    void
    saveState(Serializer &s) const
    {
        static_assert(std::is_trivially_copyable_v<Vma>,
                      "Vma must be raw-serializable");
        s.putU64(vmas_.size());
        for (const auto &[base, vma] : vmas_)
            s.putRaw(&vma, sizeof(Vma));
        s.putU64(bump_);
    }

    void
    restoreState(Deserializer &d)
    {
        vmas_.clear();
        std::uint64_t n = d.getU64();
        for (std::uint64_t i = 0; i < n && d.ok(); ++i) {
            Vma vma;
            d.getRaw(&vma, sizeof(Vma));
            vmas_.emplace(vma.base, vma);
        }
        bump_ = d.getU64();
    }

  private:
    std::map<Addr, Vma> vmas_; // keyed by base
    Addr bump_ = kMmapBase;
};

} // namespace ap

#endif // AGILEPAGING_GUESTOS_VMA_HH
