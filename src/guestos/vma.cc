/**
 * @file
 * Address-space map implementation.
 */

#include "guestos/vma.hh"

#include "base/logging.hh"

namespace ap
{

bool
AddressSpace::add(const Vma &vma)
{
    ap_assert(vma.length > 0, "empty VMA");
    // Find the first VMA ending after our base and check overlap.
    auto it = vmas_.upper_bound(vma.base);
    if (it != vmas_.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end() > vma.base)
            return false;
    }
    if (it != vmas_.end() && it->second.base < vma.end())
        return false;
    vmas_[vma.base] = vma;
    return true;
}

Addr
AddressSpace::addAnywhere(Addr length, Addr align, bool writable,
                          VmaKind kind, std::uint64_t file_id)
{
    ap_assert(align > 0 && (align & (align - 1)) == 0,
              "alignment must be a power of two");
    Addr base = (bump_ + align - 1) & ~(align - 1);
    Vma vma;
    vma.base = base;
    vma.length = length;
    vma.writable = writable;
    vma.kind = kind;
    vma.fileId = file_id;
    if (!add(vma)) {
        // The bump pointer collided with a fixed mapping; skip past
        // everything mapped and retry once.
        Addr max_end = kMmapBase;
        for (const auto &[b, v] : vmas_)
            max_end = std::max(max_end, v.end());
        bump_ = max_end;
        base = (bump_ + align - 1) & ~(align - 1);
        vma.base = base;
        if (!add(vma))
            return 0;
    }
    bump_ = vma.end();
    if (bump_ >= (Addr{1} << 47))
        return 0;
    return base;
}

bool
AddressSpace::remove(Addr base, Addr length)
{
    Addr end = base + length;
    bool removed = false;
    auto it = vmas_.lower_bound(base);
    if (it != vmas_.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end() > base)
            it = prev;
    }
    while (it != vmas_.end() && it->second.base < end) {
        Vma vma = it->second;
        it = vmas_.erase(it);
        removed = true;
        if (vma.base < base) {
            Vma left = vma;
            left.length = base - vma.base;
            vmas_[left.base] = left;
        }
        if (vma.end() > end) {
            Vma right = vma;
            right.base = end;
            right.length = vma.end() - end;
            if (right.kind == VmaKind::File) {
                // Keep file offsets stable by keeping fileId; content
                // ids are derived from absolute page offsets.
            }
            vmas_[right.base] = right;
        }
    }
    return removed;
}

const Vma *
AddressSpace::find(Addr va) const
{
    auto it = vmas_.upper_bound(va);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    return it->second.contains(va) ? &it->second : nullptr;
}

Addr
AddressSpace::mappedBytes() const
{
    Addr total = 0;
    for (const auto &[base, vma] : vmas_)
        total += vma.length;
    return total;
}

} // namespace ap
