/**
 * @file
 * Policy explorer: sweeps the agile paging policy knobs (interval
 * length, write-burst threshold, back-policy, hysteresis) on one
 * workload and prints the overhead surface — the tool you would use
 * to re-tune Section III-C's policies for a new workload.
 *
 *   ./policy_explorer [workload] [ops]
 */

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "sim/experiment.hh"

namespace
{

using namespace ap;

double
run(const std::string &wl, std::uint64_t ops, Tick interval,
    std::uint32_t threshold, BackPolicy back, std::uint32_t hysteresis)
{
    WorkloadParams params = defaultParamsFor(wl);
    params.operations = ops;
    SimConfig cfg = configFor(VirtMode::Agile, PageSize::Size4K, params);
    cfg.policyIntervalOps = interval;
    cfg.policy.writeThreshold = threshold;
    cfg.policy.backPolicy = back;
    cfg.policy.promoteAfterCleanIntervals = hysteresis;
    Machine machine(cfg);
    auto w = makeWorkload(wl, params);
    return machine.run(*w).totalOverhead();
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::string wl = argc > 1 ? argv[1] : "dedup";
    std::uint64_t ops = argc > 2 ? std::stoull(argv[2]) : 600'000;

    std::printf("agile policy sweep on %s (%lu ops); cells are total "
                "overhead\n\n",
                wl.c_str(), static_cast<unsigned long>(ops));

    std::printf("interval sweep (threshold=2, dirty-scan, "
                "hysteresis=8):\n");
    for (ap::Tick interval : {25'000u, 50'000u, 100'000u, 200'000u,
                              400'000u}) {
        std::printf("  interval=%-7lu  %6.1f%%\n",
                    static_cast<unsigned long>(interval),
                    run(wl, ops, interval, 2, ap::BackPolicy::DirtyScan,
                        8) *
                        100);
    }

    std::printf("\nhysteresis sweep (interval=200k, threshold=2, "
                "dirty-scan):\n");
    for (std::uint32_t h : {1u, 2u, 4u, 8u, 16u}) {
        std::printf("  hysteresis=%-3u  %6.1f%%\n", h,
                    run(wl, ops, 200'000, 2, ap::BackPolicy::DirtyScan,
                        h) *
                        100);
    }

    std::printf("\nback-policy x threshold matrix (interval=200k):\n");
    std::printf("  %-10s %8s %8s %8s\n", "", "thr=1", "thr=2", "thr=4");
    struct
    {
        const char *name;
        ap::BackPolicy bp;
    } policies[] = {{"none", ap::BackPolicy::None},
                    {"periodic", ap::BackPolicy::PeriodicReset},
                    {"dirty", ap::BackPolicy::DirtyScan}};
    for (auto &p : policies) {
        std::printf("  %-10s", p.name);
        for (std::uint32_t thr : {1u, 2u, 4u}) {
            std::printf(" %7.1f%%",
                        run(wl, ops, 200'000, thr, p.bp, 8) * 100);
        }
        std::printf("\n");
    }
    return 0;
}
