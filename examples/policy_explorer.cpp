/**
 * @file
 * Policy explorer: sweeps the agile paging policy knobs (interval
 * length, write-burst threshold, back-policy, hysteresis) on one
 * workload and prints the overhead surface — the tool you would use
 * to re-tune Section III-C's policies for a new workload.
 *
 * All sweep cells are independent machines, so they fan out across
 * worker threads; jobs=0 uses every hardware thread. Every cell
 * replays one shared recorded trace (the policy knobs never change
 * the operation stream); --no-trace-cache re-generates each cell.
 * Cells that share a full config (the baseline point appears in all
 * three sweeps) additionally fork one warm machine image instead of
 * re-running warmup; --snapshot-dir persists those images across
 * invocations and --no-snapshot-cache disables the forking.
 *
 *   ./policy_explorer [workload] [ops] [jobs] [--no-trace-cache]
 *                     [--no-snapshot-cache] [--snapshot-dir DIR]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "trace/trace_cache.hh"

namespace
{

using namespace ap;

/** One cell of the sweep surface. */
struct PolicyCell
{
    Tick interval;
    std::uint32_t threshold;
    BackPolicy back;
    std::uint32_t hysteresis;
};

double
run(const std::string &wl, std::uint64_t ops, const PolicyCell &cell,
    TraceCache *cache, SnapshotCache *snaps)
{
    WorkloadParams params = defaultParamsFor(wl);
    params.operations = ops;
    SimConfig cfg = configFor(VirtMode::Agile, PageSize::Size4K, params);
    cfg.policyIntervalOps = cell.interval;
    cfg.policy.writeThreshold = cell.threshold;
    cfg.policy.backPolicy = cell.back;
    cfg.policy.promoteAfterCleanIntervals = cell.hysteresis;
    if (cache && snaps) {
        return runCellSnapshotted(*cache, *snaps, wl, params, cfg)
            .totalOverhead();
    }
    if (cache)
        return runCellCached(*cache, wl, params, cfg).totalOverhead();
    Machine machine(cfg);
    auto w = makeWorkload(wl, params);
    return machine.run(*w).totalOverhead();
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    bool use_cache = true;
    bool use_snaps = true;
    std::string snapshot_dir;
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--no-trace-cache"))
            use_cache = false;
        else if (!std::strcmp(argv[i], "--no-snapshot-cache"))
            use_snaps = false;
        else if (!std::strcmp(argv[i], "--snapshot-dir") && i + 1 < argc)
            snapshot_dir = argv[++i];
        else
            pos.push_back(argv[i]);
    }
    std::string wl = pos.size() > 0 ? pos[0] : "dedup";
    std::uint64_t ops = pos.size() > 1 ? std::stoull(pos[1]) : 600'000;
    unsigned jobs =
        pos.size() > 2 ? static_cast<unsigned>(std::stoul(pos[2])) : 1;

    const ap::Tick intervals[] = {25'000, 50'000, 100'000, 200'000,
                                  400'000};
    const std::uint32_t hystereses[] = {1, 2, 4, 8, 16};
    struct
    {
        const char *name;
        ap::BackPolicy bp;
    } policies[] = {{"none", ap::BackPolicy::None},
                    {"periodic", ap::BackPolicy::PeriodicReset},
                    {"dirty", ap::BackPolicy::DirtyScan}};
    const std::uint32_t thresholds[] = {1, 2, 4};

    // Flatten the three sweeps into one work list so a single pool
    // covers them all; results print from their index slots.
    std::vector<PolicyCell> cells;
    for (ap::Tick interval : intervals)
        cells.push_back({interval, 2, ap::BackPolicy::DirtyScan, 8});
    for (std::uint32_t h : hystereses)
        cells.push_back({200'000, 2, ap::BackPolicy::DirtyScan, h});
    for (auto &p : policies)
        for (std::uint32_t thr : thresholds)
            cells.push_back({200'000, thr, p.bp, 8});

    // Every cell shares one (workload, ops, seed, 4K) stream: the
    // first records it, the other ~22 replay through the fast path.
    // The baseline policy point recurs in all three sweeps, so those
    // cells share one warm image through the snapshot cache.
    ap::TraceCache cache;
    ap::SnapshotCache snaps(snapshot_dir);
    std::vector<double> overhead = ap::parallelMap(
        cells.size(), jobs, [&](std::size_t i) {
            return run(wl, ops, cells[i], use_cache ? &cache : nullptr,
                       use_cache && use_snaps ? &snaps : nullptr);
        });

    std::printf("agile policy sweep on %s (%lu ops); cells are total "
                "overhead\n\n",
                wl.c_str(), static_cast<unsigned long>(ops));

    std::size_t at = 0;
    std::printf("interval sweep (threshold=2, dirty-scan, "
                "hysteresis=8):\n");
    for (ap::Tick interval : intervals) {
        std::printf("  interval=%-7lu  %6.1f%%\n",
                    static_cast<unsigned long>(interval),
                    overhead[at++] * 100);
    }

    std::printf("\nhysteresis sweep (interval=200k, threshold=2, "
                "dirty-scan):\n");
    for (std::uint32_t h : hystereses) {
        std::printf("  hysteresis=%-3u  %6.1f%%\n", h,
                    overhead[at++] * 100);
    }

    std::printf("\nback-policy x threshold matrix (interval=200k):\n");
    std::printf("  %-10s %8s %8s %8s\n", "", "thr=1", "thr=2", "thr=4");
    for (auto &p : policies) {
        std::printf("  %-10s", p.name);
        for (std::uint32_t thr : thresholds) {
            (void)thr;
            std::printf(" %7.1f%%", overhead[at++] * 100);
        }
        std::printf("\n");
    }
    if (use_cache) {
        std::printf("\n[traces: %llu recorded, %llu replayed; snapshots: "
                    "%llu captured, %llu forked, %llu from disk]\n",
                    static_cast<unsigned long long>(cache.records()),
                    static_cast<unsigned long long>(cache.replays()),
                    static_cast<unsigned long long>(snaps.captures()),
                    static_cast<unsigned long long>(snaps.forks()),
                    static_cast<unsigned long long>(snaps.diskLoads()));
    }
    return 0;
}
