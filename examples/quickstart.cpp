/**
 * @file
 * Quickstart: build a simulated machine, run one workload under every
 * memory-virtualization technique, and print the paper's headline
 * comparison. Start here.
 *
 *   ./quickstart [workload] [key=value ...]
 *
 * e.g.  ./quickstart mcf
 *       ./quickstart dedup page=2m walk_ref_cycles=40
 */

#include <iostream>
#include <string>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/perf_model.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::string workload = argc > 1 ? argv[1] : "memcached";

    // 1. Pick scaled Table V parameters for the workload.
    ap::WorkloadParams params = ap::defaultParamsFor(workload);
    params.operations = 800'000;

    // 2. Build a base configuration; extra CLI args override knobs.
    ap::SimConfig base =
        ap::configFor(ap::VirtMode::Agile, ap::PageSize::Size4K, params);
    for (int i = 2; i < argc; ++i) {
        if (!base.applyOption(argv[i])) {
            std::cerr << "unknown option: " << argv[i] << "\n";
            return 1;
        }
    }

    std::cout << "workload " << workload << ", "
              << params.footprintBytes / (1 << 20) << " MB footprint, "
              << params.operations << " memory operations, "
              << ap::pageSizeName(base.pageSize) << " pages\n\n";

    // 3. Run the same workload under each technique.
    std::vector<ap::RunResult> runs;
    for (ap::VirtMode mode :
         {ap::VirtMode::Native, ap::VirtMode::Nested, ap::VirtMode::Shadow,
          ap::VirtMode::Agile}) {
        ap::SimConfig cfg = base;
        cfg.mode = mode;
        ap::Machine machine(cfg);
        auto w = ap::makeWorkload(workload, params);
        if (!w) {
            std::cerr << "unknown workload: " << workload << "\n";
            return 1;
        }
        runs.push_back(machine.run(*w));
    }
    ap::printFigure5(std::cout, runs);

    // 4. Derived Table IV quantities for the agile run.
    ap::PerfBreakdown b = ap::computeBreakdown(runs.back());
    std::cout << "\nagile paging: " << b.refsPerWalk
              << " memory references per TLB miss on average, "
              << b.cyclesPerMiss << " cycles per miss, slowdown "
              << b.slowdown << "x\n";

    double best = std::min(runs[1].slowdown(), runs[2].slowdown());
    std::cout << "agile vs best(nested, shadow): "
              << (best / runs[3].slowdown() - 1.0) * 100.0
              << "% faster\n";
    return 0;
}
