/**
 * @file
 * Trace tool: record a workload's memory-system event stream to a
 * file, or replay a recorded trace under any technique — the
 * simulator's equivalent of the paper's trace-cmd + BadgerTrap
 * methodology (Section VI), usable for shipping reproducible inputs.
 *
 *   ./trace_tool record <workload> <file> [ops]
 *   ./trace_tool replay <file> <mode> [--stream] [key=value ...]
 *   ./trace_tool info   <file>
 *
 * Files are written in the compact v2 format (APTRACE2); v1 files
 * still read. info streams the file, so arbitrarily large traces
 * summarize in bounded memory; replay defaults to the batched
 * fast path and --stream trades speed for bounded memory.
 */

#include <array>
#include <iostream>
#include <memory>
#include <string>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "trace/compiled_trace.hh"
#include "trace/record.hh"
#include "trace/trace.hh"
#include "trace/trace_stream.hh"

namespace
{

int
usage()
{
    std::cerr << "usage:\n"
              << "  trace_tool record <workload> <file> [ops]\n"
              << "  trace_tool replay <file> <mode> [--stream]"
                 " [key=value ...]\n"
              << "  trace_tool info   <file>\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    if (argc < 3)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "record") {
        if (argc < 4)
            return usage();
        std::string workload = argv[2];
        std::string path = argv[3];
        ap::WorkloadParams params = ap::defaultParamsFor(workload);
        if (argc > 4)
            params.operations = std::stoull(argv[4]);
        ap::SimConfig cfg = ap::configFor(ap::VirtMode::Nested,
                                          ap::PageSize::Size4K, params);
        ap::Machine machine(cfg);
        auto w = ap::makeWorkload(workload, params);
        if (!w) {
            std::cerr << "unknown workload: " << workload << "\n";
            return 1;
        }
        ap::RecordedRun run = ap::recordRun(machine, *w);
        if (!ap::writeTraceFile(run.trace, path)) {
            std::cerr << "cannot write " << path << "\n";
            return 1;
        }
        std::cout << "recorded " << run.trace.events.size()
                  << " events (" << run.trace.warmupEvents
                  << " warmup) to " << path << "\n";
        return 0;
    }

    if (cmd == "info") {
        // Streamed: summarizes multi-GB traces in bounded memory.
        ap::TraceFileReader reader(argv[2]);
        if (!reader.ok()) {
            std::cerr << "cannot read " << argv[2] << "\n";
            return 1;
        }
        std::array<std::uint64_t, 10> by_kind{};
        std::vector<ap::TraceEvent> chunk;
        while (reader.next(chunk, 65536)) {
            for (const ap::TraceEvent &e : chunk)
                ++by_kind[static_cast<std::size_t>(e.kind)];
        }
        if (!reader.ok()) {
            std::cerr << "malformed trace: " << argv[2] << "\n";
            return 1;
        }
        std::cout << "workload: " << reader.workload()
                  << "\nformat:   v" << reader.version()
                  << "\nseed:     " << reader.seed()
                  << "\nevents:   " << reader.eventCount() << " ("
                  << reader.warmupEvents() << " warmup)\n";
        static const char *names[] = {
            "access", "instr_fetch", "mmap",  "mmap_at",      "munmap",
            "compute", "fork",       "yield", "reclaim_tick", "share"};
        for (std::size_t k = 0; k < by_kind.size(); ++k) {
            if (by_kind[k])
                std::cout << "  " << names[k] << ": " << by_kind[k]
                          << "\n";
        }
        return 0;
    }

    if (cmd == "replay") {
        if (argc < 4)
            return usage();
        ap::SimConfig cfg;
        if (!ap::parseVirtMode(argv[3], cfg.mode)) {
            std::cerr << "unknown mode: " << argv[3] << "\n";
            return 1;
        }
        // Size memory generously for arbitrary traces.
        cfg.hostMemFrames = 1u << 19;
        cfg.guestDataFrames = 1u << 18;
        cfg.guestPtFrames = 1u << 15;
        bool stream = false;
        for (int i = 4; i < argc; ++i) {
            if (!std::string("--stream").compare(argv[i])) {
                stream = true;
            } else if (!cfg.applyOption(argv[i])) {
                std::cerr << "unknown option: " << argv[i] << "\n";
                return 1;
            }
        }
        ap::Machine machine(cfg);
        ap::RunResult r;
        if (stream) {
            // Bounded memory: never materializes the event vector.
            ap::StreamReplayWorkload replay(argv[2]);
            if (!replay.ok()) {
                std::cerr << "cannot read " << argv[2] << "\n";
                return 1;
            }
            r = machine.run(replay);
        } else {
            // Fast path: compile once, drain access runs in batch.
            ap::Trace trace;
            if (!ap::readTraceFile(argv[2], trace)) {
                std::cerr << "cannot read " << argv[2] << "\n";
                return 1;
            }
            auto compiled = std::make_shared<const ap::CompiledTrace>(
                ap::compileTrace(trace));
            ap::BatchReplayWorkload replay(compiled);
            r = machine.run(replay);
        }
        std::vector<ap::RunResult> rs{r};
        ap::printFigure5(std::cout, rs);
        return 0;
    }
    return usage();
}
