/**
 * @file
 * Trace tool: record a workload's memory-system event stream to a
 * file, or replay a recorded trace under any technique — the
 * simulator's equivalent of the paper's trace-cmd + BadgerTrap
 * methodology (Section VI), usable for shipping reproducible inputs.
 *
 *   ./trace_tool record <workload> <file> [ops]
 *   ./trace_tool replay <file> <mode> [key=value ...]
 *   ./trace_tool info   <file>
 */

#include <iostream>
#include <string>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "trace/record.hh"
#include "trace/trace.hh"

namespace
{

int
usage()
{
    std::cerr << "usage:\n"
              << "  trace_tool record <workload> <file> [ops]\n"
              << "  trace_tool replay <file> <mode> [key=value ...]\n"
              << "  trace_tool info   <file>\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    if (argc < 3)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "record") {
        if (argc < 4)
            return usage();
        std::string workload = argv[2];
        std::string path = argv[3];
        ap::WorkloadParams params = ap::defaultParamsFor(workload);
        if (argc > 4)
            params.operations = std::stoull(argv[4]);
        ap::SimConfig cfg = ap::configFor(ap::VirtMode::Nested,
                                          ap::PageSize::Size4K, params);
        ap::Machine machine(cfg);
        auto w = ap::makeWorkload(workload, params);
        if (!w) {
            std::cerr << "unknown workload: " << workload << "\n";
            return 1;
        }
        ap::RecordedRun run = ap::recordRun(machine, *w);
        if (!ap::writeTraceFile(run.trace, path)) {
            std::cerr << "cannot write " << path << "\n";
            return 1;
        }
        std::cout << "recorded " << run.trace.events.size()
                  << " events (" << run.trace.warmupEvents
                  << " warmup) to " << path << "\n";
        return 0;
    }

    if (cmd == "info") {
        ap::Trace trace;
        if (!ap::readTraceFile(argv[2], trace)) {
            std::cerr << "cannot read " << argv[2] << "\n";
            return 1;
        }
        std::cout << "workload: " << trace.workload << "\nseed:     "
                  << trace.seed << "\nevents:   " << trace.events.size()
                  << " (" << trace.warmupEvents << " warmup)\n";
        return 0;
    }

    if (cmd == "replay") {
        if (argc < 4)
            return usage();
        ap::Trace trace;
        if (!ap::readTraceFile(argv[2], trace)) {
            std::cerr << "cannot read " << argv[2] << "\n";
            return 1;
        }
        ap::SimConfig cfg;
        if (!ap::parseVirtMode(argv[3], cfg.mode)) {
            std::cerr << "unknown mode: " << argv[3] << "\n";
            return 1;
        }
        // Size memory generously for arbitrary traces.
        cfg.hostMemFrames = 1u << 19;
        cfg.guestDataFrames = 1u << 18;
        cfg.guestPtFrames = 1u << 15;
        for (int i = 4; i < argc; ++i) {
            if (!cfg.applyOption(argv[i])) {
                std::cerr << "unknown option: " << argv[i] << "\n";
                return 1;
            }
        }
        ap::Machine machine(cfg);
        ap::TraceReplayWorkload replay(std::move(trace));
        ap::RunResult r = machine.run(replay);
        std::vector<ap::RunResult> rs{r};
        ap::printFigure5(std::cout, rs);
        return 0;
    }
    return usage();
}
