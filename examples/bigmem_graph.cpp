/**
 * @file
 * Big-memory scenario: a graph500-style analytics process and a
 * memcached-style cache sharing one VM, scheduled round-robin — the
 * consolidation scenario the paper's introduction motivates. Shows
 * per-technique overheads, the sptr cache's effect on the context-
 * switch bill, and the agile mode coverage (Table VI style) for the
 * mixed system.
 *
 *   ./bigmem_graph [ops]
 */

#include <cstdio>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/machine.hh"
#include "workloads/workload.hh"

namespace
{

using namespace ap;

RunResult
runConsolidated(VirtMode mode, std::uint64_t ops, bool sptr_cache)
{
    WorkloadParams gparams = defaultParamsFor("graph500");
    gparams.footprintBytes = 96ull << 20;
    gparams.operations = ops;
    WorkloadParams mparams = defaultParamsFor("memcached");
    mparams.footprintBytes = 96ull << 20;
    mparams.operations = ops;

    SimConfig cfg = configFor(mode, PageSize::Size4K, gparams);
    cfg.hostMemFrames *= 2; // two big processes in one VM
    cfg.guestDataFrames *= 2;
    cfg.sptrCacheEntries = sptr_cache ? 8 : 0;
    Machine m(cfg);

    // Two processes; the machine's current process switches as we
    // interleave their steps (two CR3 writes per quantum).
    auto graph = makeWorkload("graph500", gparams);
    auto cache = makeWorkload("memcached", mparams);
    ProcId gpid = m.spawnProcess();
    graph->init(m);
    graph->warmup(m);
    ProcId cpid = m.guestOs().createProcess(mode);
    m.switchTo(cpid);
    cache->init(m);
    cache->warmup(m);

    RunResult base = m.snapshot("consolidated");
    bool g_more = true, c_more = true;
    const unsigned kQuantum = 2000;
    while (g_more || c_more) {
        if (g_more) {
            m.switchTo(gpid);
            for (unsigned i = 0; i < kQuantum && g_more; ++i)
                g_more = graph->step(m);
        }
        if (c_more) {
            m.switchTo(cpid);
            for (unsigned i = 0; i < kQuantum && c_more; ++i)
                c_more = cache->step(m);
        }
    }
    return Machine::delta(m.snapshot("consolidated"), base);
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);
    std::uint64_t ops = argc > 1 ? std::stoull(argv[1]) : 500'000;

    std::printf("consolidated VM: graph500 + memcached, round-robin "
                "(%lu ops each)\n\n",
                static_cast<unsigned long>(ops));
    std::printf("%-22s %8s %8s %8s %10s\n", "technique", "walk%",
                "vmm%", "total%", "cs traps");
    struct
    {
        const char *label;
        ap::VirtMode mode;
        bool sptr;
    } cases[] = {
        {"nested", ap::VirtMode::Nested, false},
        {"shadow", ap::VirtMode::Shadow, false},
        {"agile", ap::VirtMode::Agile, false},
        {"agile + sptr cache", ap::VirtMode::Agile, true},
    };
    for (auto &c : cases) {
        ap::RunResult r = runConsolidated(c.mode, ops, c.sptr);
        std::printf(
            "%-22s %7.1f%% %7.1f%% %7.1f%% %10lu\n", c.label,
            r.walkOverhead() * 100, r.vmmOverhead() * 100,
            r.totalOverhead() * 100,
            static_cast<unsigned long>(
                r.trapByKind[std::size_t(ap::TrapKind::CtxSwitch)]));
        if (c.mode == ap::VirtMode::Agile && c.sptr) {
            std::printf("\nagile mode coverage (shadow/L4/L3/L2/L1/"
                        "nested): ");
            for (double cov : r.coverage)
                std::printf("%.1f%% ", cov * 100);
            std::printf("\n");
        }
    }
    std::printf("\nThe sptr cache (Section IV) removes the context-"
                "switch VMtraps that frequent\nconsolidation scheduling "
                "would otherwise cost shadow-based techniques.\n");
    return 0;
}
