/**
 * @file
 * Copy-on-write and content-based page sharing demo (paper Section V).
 *
 * Drives the machine directly through its public API: a parent process
 * maps a file-backed region, forks a worker, both sides write (breaking
 * guest COW), then the VMM's sharing scan merges identical pages and
 * later writes break *host* COW. Prints the trap bill under shadow,
 * nested, and agile paging — the scenario where the paper says "the
 * overhead of copy-on-write is very high with shadow paging and will
 * benefit from the nested mode provided by agile paging".
 */

#include <cstdio>

#include "base/logging.hh"
#include "sim/machine.hh"

namespace
{

using namespace ap;

void
runScenario(VirtMode mode)
{
    SimConfig cfg;
    cfg.mode = mode;
    cfg.hostMemFrames = 1 << 16;
    cfg.guestPtFrames = 1 << 12;
    cfg.guestDataFrames = 1 << 15;
    Machine m(cfg);

    ProcId parent = m.spawnProcess();
    const unsigned kPages = 512;

    // A file-backed data set mapped twice (two views of the same
    // file): pages have stable content the VMM can deduplicate.
    Addr data = m.mmap(kPages * kPageBytes, true, true, /*file*/ 7);
    Addr view2 = m.mmap(kPages * kPageBytes, true, true, /*file*/ 7);
    for (unsigned i = 0; i < kPages; ++i)
        m.touch(data + i * kPageBytes, true);
    for (unsigned i = 0; i < kPages; ++i)
        m.touch(view2 + i * kPageBytes, false);

    // Fork a worker: all mappings become copy-on-write.
    ProcId child = m.guestOs().fork(parent);
    ap_assert(child != 0, "fork failed");

    // The worker rewrites a quarter of the data set (guest COW breaks
    // in the child)...
    m.switchTo(child);
    for (unsigned i = 0; i < kPages / 4; ++i)
        m.touch(data + i * kPageBytes, true);
    // ...and the parent touches another quarter (COW breaks there too).
    m.switchTo(parent);
    for (unsigned i = kPages / 2; i < kPages / 2 + kPages / 4; ++i)
        m.touch(data + i * kPageBytes, true);
    m.guestOs().exitProcess(child);

    // The VMM scans for identical content (the two file views match
    // page for page), then the guest rewrites shared pages through the
    // second view — host-level COW breaks.
    m.sharePagesScan();
    for (unsigned i = 0; i < kPages / 2; ++i)
        m.touch(view2 + i * kPageBytes, true);

    RunResult r = m.snapshot("cow_demo");
    std::printf("%-8s guest-COW=%4.0f host-COW=%4lu traps=%5lu "
                "trap-cycles=%8lu\n",
                virtModeName(mode), m.guestOs().cowBreaks.value(),
                static_cast<unsigned long>(
                    r.trapByKind[std::size_t(TrapKind::HostCow)]),
                static_cast<unsigned long>(r.traps),
                static_cast<unsigned long>(r.trapCycles));
}

} // namespace

int
main()
{
    ap::setQuietLogging(true);
    std::printf("fork + copy-on-write + content-based sharing, per "
                "technique:\n\n");
    runScenario(ap::VirtMode::Nested);
    runScenario(ap::VirtMode::Shadow);
    runScenario(ap::VirtMode::Agile);
    std::printf("\nShadow paging mediates every PT update in the COW "
                "storm; agile paging\nmoves the written regions to "
                "nested mode and converges toward nested's bill.\n");
    return 0;
}
