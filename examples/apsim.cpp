/**
 * @file
 * apsim: the general-purpose simulator driver.
 *
 *   ./apsim [options] <workload> [workload ...]
 *
 * Runs one workload (or several, consolidated round-robin) under one
 * configuration and prints the run summary; --stats dumps the full
 * gem5-style statistics tree.
 *
 * Options (key=value, see sim/config.hh): mode=, page=, pwc=, ntlb=,
 * hw_opts=, unsync=, back_policy=, walk_ref_cycles=, verify=, ...
 * plus --ops N, --footprint MB, --seed N, --quantum N, --stats,
 * --stats-json=<path> (full stats tree as versioned JSON),
 * --trace-walks=<path> (per-miss walk trace; summarize with walksum),
 * --trace-capacity N (walk-trace ring size, default 1Mi records).
 */

#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/scheduler.hh"
#include "trace/walk_trace.hh"

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);

    std::vector<std::string> workload_names;
    std::uint64_t ops = 0;
    std::uint64_t footprint_mb = 0;
    std::uint64_t seed = 42;
    std::uint64_t quantum = 2'000;
    std::uint64_t trace_capacity = 1u << 20;
    bool dump_stats = false;
    std::string stats_json_path;
    std::string trace_walks_path;
    std::vector<std::string> options;

    // `--flag value` or `--flag=value`; "" means not present.
    auto flagValue = [&](const std::string &arg, const char *flag,
                         int &i) -> std::string {
        std::string prefix = std::string(flag) + "=";
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
        if (arg == flag && i + 1 < argc)
            return argv[++i];
        return "";
    };
    auto numeric = [](const std::string &flag, const std::string &value,
                      std::uint64_t &out) {
        if (!ap::parseU64(value, out)) {
            std::cerr << "bad value for " << flag << ": '" << value
                      << "' (expected a non-negative integer)\n";
            std::exit(1);
        }
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string v;
        if (!(v = flagValue(arg, "--ops", i)).empty()) {
            numeric("--ops", v, ops);
        } else if (!(v = flagValue(arg, "--footprint", i)).empty()) {
            numeric("--footprint", v, footprint_mb);
        } else if (!(v = flagValue(arg, "--seed", i)).empty()) {
            numeric("--seed", v, seed);
        } else if (!(v = flagValue(arg, "--quantum", i)).empty()) {
            numeric("--quantum", v, quantum);
        } else if (!(v = flagValue(arg, "--trace-capacity", i)).empty()) {
            numeric("--trace-capacity", v, trace_capacity);
        } else if (!(v = flagValue(arg, "--stats-json", i)).empty()) {
            stats_json_path = v;
        } else if (!(v = flagValue(arg, "--trace-walks", i)).empty()) {
            trace_walks_path = v;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg.find('=') != std::string::npos) {
            options.push_back(arg);
        } else {
            workload_names.push_back(arg);
        }
    }
    if (workload_names.empty()) {
        std::cerr << "usage: apsim [options] <workload> [workload ...]\n"
                  << "workloads:";
        for (const auto &n : ap::workloadNames())
            std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }

    // Build per-workload parameters and a machine sized for the sum.
    std::vector<ap::WorkloadParams> params;
    ap::Addr total_footprint = 0;
    for (const std::string &name : workload_names) {
        ap::WorkloadParams p = ap::defaultParamsFor(name);
        if (ops)
            p.operations = ops;
        if (footprint_mb)
            p.footprintBytes = footprint_mb << 20;
        p.seed = seed;
        params.push_back(p);
        total_footprint += p.footprintBytes;
    }
    ap::WorkloadParams sizing = params[0];
    sizing.footprintBytes = total_footprint;
    ap::SimConfig cfg = ap::configFor(ap::VirtMode::Agile,
                                      ap::PageSize::Size4K, sizing);
    for (const std::string &opt : options) {
        if (!cfg.applyOption(opt)) {
            std::cerr << "unknown option: " << opt << "\n";
            return 1;
        }
    }

    ap::Machine machine(cfg);
    if (!trace_walks_path.empty())
        machine.enableWalkTrace(trace_capacity);
    std::vector<std::unique_ptr<ap::Workload>> workloads;
    for (std::size_t i = 0; i < workload_names.size(); ++i) {
        auto w = ap::makeWorkload(workload_names[i], params[i]);
        if (!w) {
            std::cerr << "unknown workload: " << workload_names[i]
                      << "\n";
            return 1;
        }
        workloads.push_back(std::move(w));
    }

    ap::RunResult result;
    if (workloads.size() == 1) {
        result = machine.run(*workloads[0]);
    } else {
        ap::Scheduler sched(machine, quantum);
        for (auto &w : workloads)
            sched.add(*w);
        ap::ConsolidationResult c = sched.run();
        result = c.machine;
        result.workload = "consolidated";
        std::cout << "context switches: " << c.contextSwitches << "\n";
    }

    std::vector<ap::RunResult> rs{result};
    ap::printFigure5(std::cout, rs);
    std::cout << std::fixed << std::setprecision(2);
    std::cout << "\nTLB misses: " << result.tlbMisses
              << ", walks: " << result.walks
              << ", avg refs/walk: " << result.avgWalkRefs
              << ", VM exits: " << result.traps << "\n";
    std::cout << "mode coverage (shadow/8/12/16/20/nested):";
    for (double c : result.coverage)
        std::cout << " " << c * 100 << "%";
    std::cout << "\n";

    if (dump_stats) {
        std::cout << "\n";
        machine.dump(std::cout);
    }
    if (!stats_json_path.empty()) {
        std::ofstream os(stats_json_path);
        if (!os) {
            std::cerr << "cannot write " << stats_json_path << "\n";
            return 1;
        }
        machine.dumpJson(os);
        std::cout << "stats json: " << stats_json_path << "\n";
    }
    if (!trace_walks_path.empty()) {
        if (!ap::writeWalkTraceFile(*machine.walkTrace(),
                                    trace_walks_path)) {
            std::cerr << "cannot write " << trace_walks_path << "\n";
            return 1;
        }
        std::cout << "walk trace: " << trace_walks_path << " ("
                  << machine.walkTrace()->size() << " records, "
                  << machine.walkTrace()->dropped()
                  << " dropped)\n";
    }
    return 0;
}
