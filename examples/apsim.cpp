/**
 * @file
 * apsim: the general-purpose simulator driver.
 *
 *   ./apsim [options] <workload> [workload ...]
 *
 * Runs one workload (or several, consolidated round-robin) under one
 * configuration and prints the run summary; --stats dumps the full
 * gem5-style statistics tree.
 *
 * Options (key=value, see sim/config.hh): mode=, page=, pwc=, ntlb=,
 * hw_opts=, unsync=, back_policy=, walk_ref_cycles=, verify=, ...
 * plus --ops N, --footprint MB, --seed N, --quantum N, --stats,
 * --stats-json=<path> (full stats tree as versioned JSON),
 * --trace-walks=<path> (per-miss walk trace; summarize with walksum),
 * --trace-capacity N (walk-trace ring size, default 1Mi records),
 * --snapshot-dir=<dir> (persist the warm-boundary machine image and
 * the recorded operation stream under <dir>; a repeat invocation with
 * the same workload/config restores the APSNAP1 image and runs only
 * the measured region, bit-identical to the cold run).
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/scheduler.hh"
#include "sim/snapshot.hh"
#include "trace/compiled_trace.hh"
#include "trace/trace.hh"
#include "trace/walk_trace.hh"

namespace
{

/** <dir>/<sanitized-workload>_o<ops>_s<seed>_f<bytes>_d<digest>: the
 *  stem shared by a run's snapshot sidecar trace file(s). */
std::string
sidecarStem(const std::string &dir, const ap::SnapshotKey &key)
{
    std::string name = key.workload;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '-';
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "_o%llu_s%llu_f%llu_d%016llx",
                  static_cast<unsigned long long>(key.operations),
                  static_cast<unsigned long long>(key.seed),
                  static_cast<unsigned long long>(key.footprintBytes),
                  static_cast<unsigned long long>(key.configDigest));
    return dir + "/" + name + buf;
}

/**
 * Routes an inner workload's host calls through a TraceRecorder so
 * Machine::runWarmup/runMeasured (which pass the machine itself as
 * the host) record the stream as a side effect.
 */
class RecordingWorkload : public ap::Workload
{
  public:
    RecordingWorkload(ap::Workload &inner, ap::TraceRecorder &rec)
        : ap::Workload(inner.params()), inner_(inner), rec_(rec)
    {}

    std::string name() const override { return inner_.name(); }
    bool selfWarmup() const override { return inner_.selfWarmup(); }
    void init(ap::WorkloadHost &) override { inner_.init(rec_); }
    void warmup(ap::WorkloadHost &) override { inner_.warmup(rec_); }
    bool step(ap::WorkloadHost &) override { return inner_.step(rec_); }

  private:
    ap::Workload &inner_;
    ap::TraceRecorder &rec_;
};

/**
 * One workload with --snapshot-dir: if the sidecar trace exists,
 * replay it — restoring the persisted warm image (or capturing it if
 * missing) and running only the measured region. Otherwise record the
 * stream while running, capture the image at the measurement
 * boundary, and persist both. Either way the result is bit-identical
 * to machine.run(workload).
 */
ap::RunResult
runSnapshotted(ap::Machine &machine, ap::Workload &workload,
               const std::string &name, ap::SnapshotCache &snaps,
               const ap::SnapshotKey &key, const std::string &trace_path)
{
    ap::Trace disk;
    if (ap::readTraceFile(trace_path, disk)) {
        auto compiled = std::make_shared<const ap::CompiledTrace>(
            ap::compileTrace(disk));
        ap::BatchReplayWorkload replay(compiled);
        bool warmed = false;
        ap::SnapshotPtr snap = snaps.obtain(key, [&] {
            machine.runWarmup(replay);
            warmed = true;
            return ap::captureSnapshot(machine);
        });
        if (!warmed) {
            bool ok = ap::restoreSnapshot(*snap, machine);
            ap_assert(ok, "stale snapshot for ", name);
            replay.resumeAtBoundary(machine);
        }
        ap::RunResult r = machine.runMeasured(replay);
        r.workload = name;
        return r;
    }

    // Cold: run normally but with the host calls recorded, capturing
    // the warm image at the measurement boundary between the halves.
    ap::TraceRecorder rec(machine);
    RecordingWorkload recording(workload, rec);
    machine.runWarmup(recording);
    rec.markWarmupBoundary();
    snaps.obtain(key, [&] { return ap::captureSnapshot(machine); });
    ap::RunResult result = machine.runMeasured(recording);
    ap::Trace trace = std::move(rec.trace());
    trace.workload = name;
    trace.seed = workload.params().seed;
    ap::writeTraceFile(trace, trace_path);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    ap::setQuietLogging(true);

    std::vector<std::string> workload_names;
    std::uint64_t ops = 0;
    std::uint64_t footprint_mb = 0;
    std::uint64_t seed = 42;
    std::uint64_t quantum = 2'000;
    std::uint64_t trace_capacity = 1u << 20;
    bool dump_stats = false;
    std::string stats_json_path;
    std::string trace_walks_path;
    std::string snapshot_dir;
    std::vector<std::string> options;

    // `--flag value` or `--flag=value`; "" means not present.
    auto flagValue = [&](const std::string &arg, const char *flag,
                         int &i) -> std::string {
        std::string prefix = std::string(flag) + "=";
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
        if (arg == flag && i + 1 < argc)
            return argv[++i];
        return "";
    };
    auto numeric = [](const std::string &flag, const std::string &value,
                      std::uint64_t &out) {
        if (!ap::parseU64(value, out)) {
            std::cerr << "bad value for " << flag << ": '" << value
                      << "' (expected a non-negative integer)\n";
            std::exit(1);
        }
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string v;
        if (!(v = flagValue(arg, "--ops", i)).empty()) {
            numeric("--ops", v, ops);
        } else if (!(v = flagValue(arg, "--footprint", i)).empty()) {
            numeric("--footprint", v, footprint_mb);
        } else if (!(v = flagValue(arg, "--seed", i)).empty()) {
            numeric("--seed", v, seed);
        } else if (!(v = flagValue(arg, "--quantum", i)).empty()) {
            numeric("--quantum", v, quantum);
        } else if (!(v = flagValue(arg, "--trace-capacity", i)).empty()) {
            numeric("--trace-capacity", v, trace_capacity);
        } else if (!(v = flagValue(arg, "--stats-json", i)).empty()) {
            stats_json_path = v;
        } else if (!(v = flagValue(arg, "--trace-walks", i)).empty()) {
            trace_walks_path = v;
        } else if (!(v = flagValue(arg, "--snapshot-dir", i)).empty()) {
            snapshot_dir = v;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg.find('=') != std::string::npos) {
            options.push_back(arg);
        } else {
            workload_names.push_back(arg);
        }
    }
    if (workload_names.empty()) {
        std::cerr << "usage: apsim [options] <workload> [workload ...]\n"
                  << "workloads:";
        for (const auto &n : ap::workloadNames())
            std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }

    // Build per-workload parameters and a machine sized for the sum.
    std::vector<ap::WorkloadParams> params;
    ap::Addr total_footprint = 0;
    for (const std::string &name : workload_names) {
        ap::WorkloadParams p = ap::defaultParamsFor(name);
        if (ops)
            p.operations = ops;
        if (footprint_mb)
            p.footprintBytes = footprint_mb << 20;
        p.seed = seed;
        params.push_back(p);
        total_footprint += p.footprintBytes;
    }
    ap::WorkloadParams sizing = params[0];
    sizing.footprintBytes = total_footprint;
    ap::SimConfig cfg = ap::configFor(ap::VirtMode::Agile,
                                      ap::PageSize::Size4K, sizing);
    for (const std::string &opt : options) {
        if (!cfg.applyOption(opt)) {
            std::cerr << "unknown option: " << opt << "\n";
            return 1;
        }
    }

    ap::Machine machine(cfg);
    if (!trace_walks_path.empty())
        machine.enableWalkTrace(trace_capacity);
    std::vector<std::unique_ptr<ap::Workload>> workloads;
    for (std::size_t i = 0; i < workload_names.size(); ++i) {
        auto w = ap::makeWorkload(workload_names[i], params[i]);
        if (!w) {
            std::cerr << "unknown workload: " << workload_names[i]
                      << "\n";
            return 1;
        }
        workloads.push_back(std::move(w));
    }

    ap::RunResult result;
    if (workloads.size() == 1) {
        if (snapshot_dir.empty()) {
            result = machine.run(*workloads[0]);
        } else {
            ap::SnapshotCache snaps(snapshot_dir);
            ap::SnapshotKey key;
            key.workload = workload_names[0];
            key.operations = params[0].operations;
            key.seed = params[0].seed;
            key.footprintBytes = params[0].footprintBytes;
            key.configDigest = ap::simConfigDigest(cfg);
            result = runSnapshotted(
                machine, *workloads[0], workload_names[0], snaps, key,
                sidecarStem(snapshot_dir, key) + ".aptrace");
            std::cout << "snapshot: "
                      << (snaps.forks() || snaps.diskLoads()
                              ? "restored warm image, measured region only"
                              : "captured warm image")
                      << "\n";
        }
    } else {
        ap::Scheduler sched(machine, quantum);
        ap::ConsolidationResult c;
        if (snapshot_dir.empty()) {
            for (auto &w : workloads)
                sched.add(*w);
            c = sched.run();
        } else {
            // The quantum shapes the interleaved stream, so it is
            // folded into the key alongside the workload mix.
            std::string joined;
            for (std::size_t i = 0; i < workload_names.size(); ++i)
                joined += (i ? "+" : "") + workload_names[i];
            ap::SnapshotKey key;
            key.workload = "consolidated:" + joined + "@q" +
                           std::to_string(quantum);
            key.operations = params[0].operations;
            key.seed = params[0].seed;
            key.footprintBytes = total_footprint;
            key.configDigest = ap::simConfigDigest(cfg);
            std::string stem = sidecarStem(snapshot_dir, key);
            ap::SnapshotCache snaps(snapshot_dir);

            std::vector<ap::Trace> slots(workloads.size());
            bool ready = true;
            for (std::size_t i = 0; i < slots.size(); ++i) {
                ready = ready &&
                        ap::readTraceFile(
                            stem + "_" + std::to_string(i) + ".aptrace",
                            slots[i]);
            }
            if (!ready) {
                for (std::size_t i = 0; i < workloads.size(); ++i)
                    sched.addRecorded(*workloads[i], slots[i]);
                sched.warmup();
                snaps.obtain(key,
                             [&] { return ap::captureSnapshot(machine); });
                c = sched.runMeasured();
                for (std::size_t i = 0; i < slots.size(); ++i) {
                    ap::writeTraceFile(slots[i],
                                       stem + "_" + std::to_string(i) +
                                           ".aptrace");
                }
                std::cout << "snapshot: captured warm image\n";
            } else {
                for (const ap::Trace &t : slots)
                    sched.addReplay(t);
                bool warmed = false;
                ap::SnapshotPtr snap = snaps.obtain(key, [&] {
                    sched.warmup();
                    warmed = true;
                    return ap::captureSnapshot(machine);
                });
                if (!warmed) {
                    bool ok = sched.resumeFromSnapshot(*snap);
                    ap_assert(ok, "stale consolidation snapshot for ",
                              key.workload);
                }
                c = sched.runMeasured();
                std::cout << "snapshot: "
                          << (warmed
                                  ? "captured warm image"
                                  : "restored warm image, measured "
                                    "region only")
                          << "\n";
            }
        }
        result = c.machine;
        result.workload = "consolidated";
        std::cout << "context switches: " << c.contextSwitches << "\n";
    }

    std::vector<ap::RunResult> rs{result};
    ap::printFigure5(std::cout, rs);
    std::cout << std::fixed << std::setprecision(2);
    std::cout << "\nTLB misses: " << result.tlbMisses
              << ", walks: " << result.walks
              << ", avg refs/walk: " << result.avgWalkRefs
              << ", VM exits: " << result.traps << "\n";
    std::cout << "mode coverage (shadow/8/12/16/20/nested):";
    for (double c : result.coverage)
        std::cout << " " << c * 100 << "%";
    std::cout << "\n";

    if (dump_stats) {
        std::cout << "\n";
        machine.dump(std::cout);
    }
    if (!stats_json_path.empty()) {
        std::ofstream os(stats_json_path);
        if (!os) {
            std::cerr << "cannot write " << stats_json_path << "\n";
            return 1;
        }
        machine.dumpJson(os);
        std::cout << "stats json: " << stats_json_path << "\n";
    }
    if (!trace_walks_path.empty()) {
        if (!ap::writeWalkTraceFile(*machine.walkTrace(),
                                    trace_walks_path)) {
            std::cerr << "cannot write " << trace_walks_path << "\n";
            return 1;
        }
        std::cout << "walk trace: " << trace_walks_path << " ("
                  << machine.walkTrace()->size() << " records, "
                  << machine.walkTrace()->dropped()
                  << " dropped)\n";
    }
    return 0;
}
